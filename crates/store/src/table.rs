//! A single soft-state table.

use crate::archive::SpilledRow;
use crate::hash::{FxHashMap, FxHashSet};
use p2_types::{Time, TimeDelta, Tuple, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Declaration of a table — the runtime form of a `materialize` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// Row lifetime; `None` means rows never expire.
    pub lifetime: Option<TimeDelta>,
    /// Maximum row count; `None` means unbounded.
    pub max_rows: Option<usize>,
    /// **0-based** primary-key field indexes (the parser's 1-based
    /// `keys(...)` are shifted by the planner).
    pub key_fields: Vec<usize>,
}

impl TableSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        lifetime: Option<TimeDelta>,
        max_rows: Option<usize>,
        key_fields: Vec<usize>,
    ) -> TableSpec {
        TableSpec {
            name: name.into(),
            lifetime,
            max_rows,
            key_fields,
        }
    }

    /// Extract the primary key of a tuple under this spec.
    ///
    /// Missing fields key as a distinguished empty marker rather than
    /// erroring: remote nodes may send short tuples and the table must
    /// stay robust (the row is still stored and retrievable).
    pub fn key_of(&self, t: &Tuple) -> Vec<Value> {
        self.key_fields
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::str("\u{0}missing")))
            .collect()
    }

    /// [`TableSpec::key_of`] as a shared slice. The store copies each
    /// key into the row map, the order queue, the expiry heap, and any
    /// secondary index bucket; sharing one allocation makes every copy
    /// after the first a refcount bump instead of a `Vec` clone. When
    /// the key covers every field in order — common for event-like and
    /// trace tables declared `keys(1, ..., n)` — the tuple's own value
    /// slice is shared and no allocation happens at all.
    pub fn key_arc(&self, t: &Tuple) -> Key {
        if self.key_fields.len() == t.arity()
            && self.key_fields.iter().enumerate().all(|(i, &f)| f == i)
        {
            return t.values_arc();
        }
        self.key_fields
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::str("\u{0}missing")))
            .collect()
    }
}

/// A primary key: the key fields of a tuple, shared across the store's
/// internal structures.
pub type Key = std::sync::Arc<[Value]>;

/// What an insert did, reported to the node runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// A new row was added. Carries the rows evicted to make room (empty
    /// unless the table was at its size bound).
    Inserted {
        /// Rows evicted by the size bound, oldest first.
        evicted: Vec<Tuple>,
    },
    /// A row with the same primary key existed and was replaced.
    Replaced {
        /// The previous row.
        old: Tuple,
    },
    /// The identical tuple (same key, same content) was already present;
    /// its lifetime was refreshed but no delta event should fire.
    Refreshed,
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Tuple,
    expires_at: Option<Time>,
    seq: u64,
    /// Start of the row's validity interval. A refresh keeps it (same
    /// content, one continuous interval); a replacement resets it.
    inserted_at: Time,
}

/// One pending-expiry entry. Ordering is `(at, seq)` only — `seq` is
/// unique per entry, so keys (which are not `Ord`) never need comparing.
#[derive(Debug, Clone)]
struct HeapEnt {
    at: Time,
    seq: u64,
    key: Key,
}

impl PartialEq for HeapEnt {
    fn eq(&self, other: &HeapEnt) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapEnt {}

impl PartialOrd for HeapEnt {
    fn partial_cmp(&self, other: &HeapEnt) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEnt {
    fn cmp(&self, other: &HeapEnt) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Probe-path counters, exposed through the `sysStat` introspection
/// table so monitoring programs can query the query engine's own lookup
/// behaviour (§2.2 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// `scan_eq` calls answered from a secondary index.
    pub index_probes: u64,
    /// `scan_eq` calls that fell back to a linear filter.
    pub linear_probes: u64,
    /// Live rows examined across all probes.
    pub rows_scanned: u64,
    /// Rows actually returned across all probes.
    pub rows_returned: u64,
    /// Expiry-heap entries popped (due or stale).
    pub heap_pops: u64,
    /// Indexes created by the runtime fallback (vs. planner-registered).
    pub auto_indexes: u64,
}

/// Unindexed probes on one field before the runtime auto-creates an
/// index for it (the fallback that lets on-line-installed monitoring
/// queries benefit without a reinstall).
pub const DEFAULT_AUTO_INDEX_THRESHOLD: u32 = 16;

/// Tally of what a batched insert did (see [`Table::insert_batch`]).
/// Per-row outcomes are deliberately not materialized: batch callers are
/// the no-subscriber fast path, which only needs the counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Rows newly added.
    pub inserted: usize,
    /// Rows that replaced an existing row with the same key.
    pub replaced: usize,
    /// Identical re-insertions (lifetime refresh, no delta).
    pub refreshed: usize,
}

/// A soft-state table: primary-keyed rows with lifetime and size bounds.
///
/// All methods take `now` explicitly; the table never consults a clock of
/// its own, which is what lets the discrete-event simulator drive it on
/// virtual time (DESIGN.md §2.4).
///
/// Lookup structure (DESIGN.md §2.7): rows live in a primary-key map;
/// `order` is the deterministic scan order (insertion sequence); each
/// registered secondary index maps a field's value to the keys holding
/// it; the expiry heap orders pending lifetimes so `expire(now)` touches
/// only rows actually due. Stale entries in `order` and the heap are
/// recognised by sequence number: every write stamps a fresh `seq`, so
/// an entry is current iff the live row's `seq` matches.
#[derive(Debug, Clone)]
pub struct Table {
    spec: TableSpec,
    rows: FxHashMap<Key, Row>,
    /// Keys in insertion order, with the sequence number they were
    /// enqueued under. Always seq-ascending; stale entries are skipped
    /// lazily and compacted when they dominate.
    order: VecDeque<(Key, u64)>,
    /// Secondary indexes: field position → value → keys of rows holding
    /// that value in that field. Maintained on every mutation.
    indexes: HashMap<usize, FxHashMap<Value, FxHashSet<Key>>>,
    /// Min-heap of pending expirations `(expires_at, seq, key)`.
    expiry: BinaryHeap<Reverse<HeapEnt>>,
    next_seq: u64,
    /// Bumped on every mutation that can change what `scan`/`scan_eq`
    /// observe (insert, refresh, replace, evict, expire, delete, clear).
    /// A `(version, now)` pair therefore keys probe results exactly:
    /// same version and same probe time ⇒ bit-identical candidate set.
    version: u64,
    /// Archive enrollment (DESIGN.md §2.11): when set, every dropped
    /// row — expired, evicted, replaced, or deleted — lands in `spilled`
    /// with its validity interval instead of vanishing. The catalog
    /// drains the buffer into the archive tier.
    archive_enrolled: bool,
    spilled: Vec<SpilledRow>,
    /// `None` disables the runtime auto-index fallback.
    auto_index_threshold: Option<u32>,
    /// Unindexed-probe counts per field, driving the fallback.
    unindexed_probes: HashMap<usize, u32>,
    /// Monotonic counters for the introspection/metrics tables.
    inserts: u64,
    replacements: u64,
    evictions: u64,
    expirations: u64,
    deletions: u64,
    stats: ProbeStats,
}

impl Table {
    /// Create an empty table.
    pub fn new(spec: TableSpec) -> Table {
        Table {
            spec,
            rows: FxHashMap::default(),
            order: VecDeque::new(),
            indexes: HashMap::new(),
            expiry: BinaryHeap::new(),
            next_seq: 0,
            version: 0,
            archive_enrolled: false,
            spilled: Vec::new(),
            auto_index_threshold: Some(DEFAULT_AUTO_INDEX_THRESHOLD),
            unindexed_probes: HashMap::new(),
            inserts: 0,
            replacements: 0,
            evictions: 0,
            expirations: 0,
            deletions: 0,
            stats: ProbeStats::default(),
        }
    }

    /// The table's declaration.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Mutation counter; see the field docs. Strand probe caches key
    /// their cached candidate sets on this.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live row count (after expiring stale rows at `now`).
    pub fn len(&mut self, now: Time) -> usize {
        self.expire(now);
        self.rows.len()
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&mut self, now: Time) -> bool {
        self.len(now) == 0
    }

    /// Row count without expiring first (used by metrics snapshots that
    /// must not mutate).
    pub fn raw_len(&self) -> usize {
        self.rows.len()
    }

    /// Approximate bytes held by live tuples (metrics).
    pub fn approx_bytes(&self) -> usize {
        self.rows.values().map(|r| r.tuple.approx_bytes()).sum()
    }

    /// Lifetime counters: (inserts, replacements, evictions, expirations,
    /// deletions).
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.inserts,
            self.replacements,
            self.evictions,
            self.expirations,
            self.deletions,
        )
    }

    /// Probe-path counters (index vs. linear probes, rows touched, heap
    /// activity).
    pub fn probe_stats(&self) -> ProbeStats {
        self.stats
    }

    /// Register a secondary index on `field`, building it from current
    /// rows. Idempotent.
    pub fn ensure_index(&mut self, field: usize) {
        if self.indexes.contains_key(&field) {
            return;
        }
        let mut idx: FxHashMap<Value, FxHashSet<Key>> = FxHashMap::default();
        for (key, row) in &self.rows {
            if let Some(v) = row.tuple.get(field) {
                idx.entry(v.clone()).or_default().insert(key.clone());
            }
        }
        self.indexes.insert(field, idx);
        self.unindexed_probes.remove(&field);
    }

    /// Fields with a secondary index, ascending.
    pub fn indexed_fields(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.indexes.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Configure (or with `None`, disable) the auto-index fallback.
    pub fn set_auto_index_threshold(&mut self, threshold: Option<u32>) {
        self.auto_index_threshold = threshold;
    }

    /// Enroll (or withdraw) the table in the archive tier: dropped rows
    /// spill into a buffer instead of vanishing. `clear` is exempt —
    /// it is a test-reset, not part of an execution's history.
    pub fn set_archive_enrolled(&mut self, on: bool) {
        self.archive_enrolled = on;
        if !on {
            self.spilled = Vec::new();
        }
    }

    /// Whether dropped rows spill to the archive.
    pub fn archive_enrolled(&self) -> bool {
        self.archive_enrolled
    }

    /// Drain the spill buffer (rows in drop order, `dropped_at`
    /// non-decreasing — expiry pops ascend in due time and run before
    /// every same-instant mutation).
    pub fn take_spilled(&mut self) -> Vec<SpilledRow> {
        std::mem::take(&mut self.spilled)
    }

    /// Snapshot live rows with their insertion times (insertion order),
    /// the live half of a history scan.
    pub fn scan_with_birth(&mut self, now: Time) -> Vec<(Tuple, Time)> {
        self.expire(now);
        let rows = &self.rows;
        self.order
            .iter()
            .filter(|(k, s)| rows.get(k).is_some_and(|r| r.seq == *s))
            .map(|(k, _)| (rows[k].tuple.clone(), rows[k].inserted_at))
            .collect()
    }

    fn index_add(
        indexes: &mut HashMap<usize, FxHashMap<Value, FxHashSet<Key>>>,
        key: &Key,
        tuple: &Tuple,
    ) {
        for (&field, idx) in indexes.iter_mut() {
            if let Some(v) = tuple.get(field) {
                idx.entry(v.clone()).or_default().insert(key.clone());
            }
        }
    }

    fn index_remove(
        indexes: &mut HashMap<usize, FxHashMap<Value, FxHashSet<Key>>>,
        key: &[Value],
        tuple: &Tuple,
    ) {
        for (&field, idx) in indexes.iter_mut() {
            if let Some(v) = tuple.get(field) {
                if let Some(bucket) = idx.get_mut(v) {
                    bucket.remove(key);
                    if bucket.is_empty() {
                        idx.remove(v);
                    }
                }
            }
        }
    }

    /// Drop rows whose lifetime has elapsed. Returns how many were
    /// dropped. Called lazily by every read and write; cost is
    /// O(due rows), not O(table), because the expiry heap orders pending
    /// lifetimes.
    pub fn expire(&mut self, now: Time) -> usize {
        if self.spec.lifetime.is_none() {
            return 0;
        }
        let mut dropped = 0;
        while let Some(Reverse(top)) = self.expiry.peek() {
            if top.at > now {
                break;
            }
            let Some(Reverse(ent)) = self.expiry.pop() else {
                break;
            };
            self.stats.heap_pops += 1;
            // Current iff the live row still carries this entry's seq; a
            // refresh/replace stamped a newer seq (and pushed its own
            // heap entry), making this one stale.
            let current = self.rows.get(&ent.key).is_some_and(|r| r.seq == ent.seq);
            if current {
                if let Some(row) = self.rows.remove(&ent.key) {
                    Table::index_remove(&mut self.indexes, &ent.key, &row.tuple);
                    self.expirations += 1;
                    dropped += 1;
                    if self.archive_enrolled {
                        // The drop time is the expiry *deadline*, not
                        // the (read-pattern-dependent) observation time:
                        // archives must be deterministic.
                        self.spilled.push(SpilledRow {
                            tuple: row.tuple,
                            inserted_at: row.inserted_at,
                            dropped_at: ent.at,
                        });
                    }
                }
            }
        }
        if dropped > 0 {
            self.version += 1;
        }
        dropped
    }

    /// Drop stale order-queue entries when they dominate, bounding the
    /// queue to O(live rows).
    fn compact_order(&mut self) {
        if self.order.len() > 16 && self.order.len() > 4 * self.rows.len() {
            let rows = &self.rows;
            self.order
                .retain(|(k, s)| rows.get(k).is_some_and(|r| r.seq == *s));
        }
    }

    /// Same bound for the expiry heap: long-lived rows that keep getting
    /// refreshed leave stale entries whose due time may be far off.
    fn compact_expiry(&mut self) {
        if self.expiry.len() > 16 && self.expiry.len() > 4 * self.rows.len() {
            let rows = &self.rows;
            self.expiry = self
                .expiry
                .drain()
                .filter(|Reverse(e)| rows.get(&e.key).is_some_and(|r| r.seq == e.seq))
                .collect();
        }
    }

    /// Insert (or replace, or refresh) a tuple.
    pub fn insert(&mut self, tuple: Tuple, now: Time) -> InsertOutcome {
        self.expire(now);
        self.compact_order();
        self.compact_expiry();
        self.insert_unchecked(tuple, now)
    }

    /// Insert a run of tuples at one instant, paying the expiry/compaction
    /// prologue once for the whole batch instead of once per row. Since
    /// all rows land at the same `now`, the observable result is exactly
    /// that of inserting them one by one (expiry is idempotent at a fixed
    /// instant); only the per-call overhead is amortized.
    pub fn insert_batch(
        &mut self,
        tuples: impl IntoIterator<Item = Tuple>,
        now: Time,
    ) -> BatchOutcome {
        self.expire(now);
        self.compact_order();
        self.compact_expiry();
        let tuples = tuples.into_iter();
        let (more, _) = tuples.size_hint();
        self.rows.reserve(more);
        self.order.reserve(more);
        if self.archive_enrolled {
            // Worst case every row replaces a version that must spill.
            self.spilled.reserve(more);
        }
        let mut out = BatchOutcome::default();
        for tuple in tuples {
            match self.insert_unchecked(tuple, now) {
                InsertOutcome::Inserted { .. } => out.inserted += 1,
                InsertOutcome::Replaced { .. } => out.replaced += 1,
                InsertOutcome::Refreshed => out.refreshed += 1,
            }
        }
        out
    }

    /// The insert core, without the expiry/compaction prologue. One hash
    /// probe per row (`entry`); key copies beyond the first are refcount
    /// bumps.
    fn insert_unchecked(&mut self, tuple: Tuple, now: Time) -> InsertOutcome {
        self.version += 1;
        let key = self.spec.key_arc(&tuple);
        let expires_at = self.spec.lifetime.map(|l| now + l);
        let seq = self.next_seq;
        self.next_seq += 1;

        // Evict oldest rows if this insert would grow past the size
        // bound (amortized O(1): pop order entries, skipping stale
        // ones). Replacements and refreshes don't grow, hence the
        // presence pre-check.
        let mut evicted = Vec::new();
        if let Some(max) = self.spec.max_rows {
            if max == 0 {
                // Degenerate bound: nothing is ever stored.
                return InsertOutcome::Inserted { evicted };
            }
            if self.rows.len() >= max && !self.rows.contains_key(&key) {
                while self.rows.len() >= max {
                    match self.order.pop_front() {
                        Some((k, s)) => {
                            let current = self.rows.get(&k).is_some_and(|r| r.seq == s);
                            if current {
                                if let Some(r) = self.rows.remove(&k) {
                                    Table::index_remove(&mut self.indexes, &k, &r.tuple);
                                    if self.archive_enrolled {
                                        self.spilled.push(SpilledRow {
                                            tuple: r.tuple.clone(),
                                            inserted_at: r.inserted_at,
                                            dropped_at: now,
                                        });
                                    }
                                    evicted.push(r.tuple);
                                    self.evictions += 1;
                                }
                            }
                        }
                        None => break, // only stale entries; cannot happen with rows live
                    }
                }
            }
        }

        match self.rows.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let existing = e.get_mut();
                if existing.tuple == tuple {
                    existing.expires_at = expires_at;
                    existing.seq = seq;
                    let key = e.key().clone();
                    if let Some(at) = expires_at {
                        self.expiry.push(Reverse(HeapEnt {
                            at,
                            seq,
                            key: key.clone(),
                        }));
                    }
                    self.order.push_back((key, seq));
                    return InsertOutcome::Refreshed;
                }
                let new = tuple.clone(); // Arc-backed: no payload copy
                let old = std::mem::replace(
                    existing,
                    Row {
                        tuple,
                        expires_at,
                        seq,
                        inserted_at: now,
                    },
                );
                let key = e.key().clone();
                Table::index_remove(&mut self.indexes, &key, &old.tuple);
                if self.archive_enrolled {
                    // A replaced row is history: the old version's
                    // interval closes here, which is what lets forensic
                    // queries see every successive value a key held.
                    self.spilled.push(SpilledRow {
                        tuple: old.tuple.clone(),
                        inserted_at: old.inserted_at,
                        dropped_at: now,
                    });
                }
                let old = old.tuple;
                Table::index_add(&mut self.indexes, &key, &new);
                if let Some(at) = expires_at {
                    self.expiry.push(Reverse(HeapEnt {
                        at,
                        seq,
                        key: key.clone(),
                    }));
                }
                self.order.push_back((key, seq));
                self.replacements += 1;
                InsertOutcome::Replaced { old }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                let key = v.key().clone();
                Table::index_add(&mut self.indexes, &key, &tuple);
                if let Some(at) = expires_at {
                    self.expiry.push(Reverse(HeapEnt {
                        at,
                        seq,
                        key: key.clone(),
                    }));
                }
                self.order.push_back((key, seq));
                v.insert(Row {
                    tuple,
                    expires_at,
                    seq,
                    inserted_at: now,
                });
                self.inserts += 1;
                InsertOutcome::Inserted { evicted }
            }
        }
    }

    /// Remove the row whose primary key matches `tuple`'s. Returns the
    /// removed row, if any. This is the executor for `delete` rules
    /// (paper rules `cs10`/`cs11`).
    pub fn delete_by_key(&mut self, tuple: &Tuple, now: Time) -> Option<Tuple> {
        self.expire(now);
        let key = self.spec.key_of(tuple);
        let removed = self.rows.remove(&key[..]);
        if let Some(r) = removed {
            Table::index_remove(&mut self.indexes, &key, &r.tuple);
            self.deletions += 1;
            self.version += 1;
            if self.archive_enrolled {
                self.spilled.push(SpilledRow {
                    tuple: r.tuple.clone(),
                    inserted_at: r.inserted_at,
                    dropped_at: now,
                });
            }
            return Some(r.tuple);
        }
        None
    }

    /// Remove rows matching a predicate. Returns them. Used by the
    /// reference-counted `tupleTable` flush (§2.1.3). Single pass: rows
    /// are extracted as they match, and each removed row's own key (no
    /// clone) drives index maintenance.
    pub fn delete_where<F: FnMut(&Tuple) -> bool>(&mut self, now: Time, mut pred: F) -> Vec<Tuple> {
        self.expire(now);
        let mut out = Vec::new();
        for (key, row) in self.rows.extract_if(|_, r| pred(&r.tuple)) {
            Table::index_remove(&mut self.indexes, &key, &row.tuple);
            self.deletions += 1;
            if self.archive_enrolled {
                self.spilled.push(SpilledRow {
                    tuple: row.tuple.clone(),
                    inserted_at: row.inserted_at,
                    dropped_at: now,
                });
            }
            out.push(row.tuple);
        }
        if !out.is_empty() {
            self.version += 1;
        }
        out
    }

    /// Fetch the row with exactly this key.
    pub fn get_by_key(&mut self, key: &[Value], now: Time) -> Option<&Tuple> {
        self.expire(now);
        self.rows.get(key).map(|r| &r.tuple)
    }

    /// Snapshot all live rows (deterministic order: insertion sequence).
    ///
    /// The order queue is seq-ascending by construction, so no sort is
    /// needed: walk it, skip stale entries, clone the `Arc`-backed
    /// tuples.
    pub fn scan(&mut self, now: Time) -> Vec<Tuple> {
        self.expire(now);
        let rows = &self.rows;
        self.order
            .iter()
            .filter(|(k, s)| rows.get(k).is_some_and(|r| r.seq == *s))
            .map(|(k, _)| rows[k].tuple.clone())
            .collect()
    }

    /// Snapshot rows where field `field` equals `value` — the probe side
    /// of a join. Deterministic order as in [`Table::scan`].
    ///
    /// With a secondary index on `field` this touches only matching rows
    /// (`rows_scanned == rows_returned`); otherwise it filters linearly
    /// and, after [`DEFAULT_AUTO_INDEX_THRESHOLD`] unindexed probes of
    /// the same field, creates the index on the fly.
    pub fn scan_eq(&mut self, field: usize, value: &Value, now: Time) -> Vec<Tuple> {
        self.expire(now);
        if !self.indexes.contains_key(&field) {
            if let Some(threshold) = self.auto_index_threshold {
                let n = self.unindexed_probes.entry(field).or_insert(0);
                *n += 1;
                if *n >= threshold {
                    self.ensure_index(field);
                    self.stats.auto_indexes += 1;
                }
            }
        }
        if let Some(idx) = self.indexes.get(&field) {
            self.stats.index_probes += 1;
            let mut hits: Vec<(u64, &Tuple)> = idx
                .get(value)
                .into_iter()
                .flatten()
                .filter_map(|k| self.rows.get(k))
                .map(|r| (r.seq, &r.tuple))
                .collect();
            hits.sort_unstable_by_key(|(seq, _)| *seq);
            self.stats.rows_scanned += hits.len() as u64;
            self.stats.rows_returned += hits.len() as u64;
            hits.into_iter().map(|(_, t)| t.clone()).collect()
        } else {
            self.stats.linear_probes += 1;
            self.stats.rows_scanned += self.rows.len() as u64;
            let rows = &self.rows;
            let out: Vec<Tuple> = self
                .order
                .iter()
                .filter(|(k, s)| {
                    rows.get(k)
                        .is_some_and(|r| r.seq == *s && r.tuple.get(field) == Some(value))
                })
                .map(|(k, _)| rows[k].tuple.clone())
                .collect();
            self.stats.rows_returned += out.len() as u64;
            out
        }
    }

    /// The pre-index linear probe, kept as the oracle for the
    /// equivalence proptests and the baseline for the `store_probe`
    /// benches: filter every live row, sort by insertion sequence.
    /// Bypasses indexes, probe counters, and the auto-index fallback.
    pub fn scan_eq_linear(&mut self, field: usize, value: &Value, now: Time) -> Vec<Tuple> {
        self.expire(now);
        let mut rows: Vec<&Row> = self
            .rows
            .values()
            .filter(|r| r.tuple.get(field) == Some(value))
            .collect();
        rows.sort_by_key(|r| r.seq);
        rows.into_iter().map(|r| r.tuple.clone()).collect()
    }

    /// Remove every row (used by snapshot resets in tests). Indexes stay
    /// registered but empty.
    pub fn clear(&mut self) {
        self.version += 1;
        self.rows.clear();
        self.order.clear();
        self.expiry.clear();
        for idx in self.indexes.values_mut() {
            idx.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(life: Option<u64>, max: Option<usize>, keys: Vec<usize>) -> TableSpec {
        TableSpec::new("t", life.map(TimeDelta::from_secs), max, keys)
    }

    fn tup(a: &str, b: i64) -> Tuple {
        Tuple::new("t", [Value::addr(a), Value::Int(b)])
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        assert!(matches!(
            t.insert(tup("n1", 1), Time::ZERO),
            InsertOutcome::Inserted { .. }
        ));
        t.insert(tup("n1", 2), Time::ZERO);
        assert_eq!(t.len(Time::ZERO), 2);
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows, vec![tup("n1", 1), tup("n1", 2)]);
    }

    #[test]
    fn primary_key_replacement() {
        // Key on field 0 only: second insert with same addr replaces.
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        let out = t.insert(tup("n1", 2), Time::ZERO);
        assert_eq!(out, InsertOutcome::Replaced { old: tup("n1", 1) });
        assert_eq!(t.scan(Time::ZERO), vec![tup("n1", 2)]);
    }

    #[test]
    fn identical_reinsert_refreshes() {
        let mut t = Table::new(spec(Some(10), None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        // Re-insert at t=8 refreshes: row must survive past t=10.
        assert_eq!(
            t.insert(tup("n1", 1), Time::from_secs(8)),
            InsertOutcome::Refreshed
        );
        assert_eq!(t.len(Time::from_secs(15)), 1);
        assert_eq!(t.len(Time::from_secs(19)), 0);
    }

    #[test]
    fn lifetime_expiry() {
        let mut t = Table::new(spec(Some(100), None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        t.insert(tup("n2", 2), Time::from_secs(50));
        assert_eq!(t.len(Time::from_secs(99)), 2);
        assert_eq!(t.len(Time::from_secs(100)), 1); // first expired at exactly 100
        assert_eq!(t.scan(Time::from_secs(100)), vec![tup("n2", 2)]);
        assert_eq!(t.len(Time::from_secs(151)), 0);
        assert_eq!(t.counters().3, 2); // expirations
    }

    #[test]
    fn size_bound_evicts_oldest() {
        let mut t = Table::new(spec(None, Some(3), vec![0]));
        for (i, n) in ["a", "b", "c"].iter().enumerate() {
            t.insert(tup(n, i as i64), Time::ZERO);
        }
        let out = t.insert(tup("d", 3), Time::ZERO);
        match out {
            InsertOutcome::Inserted { evicted } => {
                assert_eq!(evicted, vec![tup("a", 0)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.len(Time::ZERO), 3);
        assert!(t.scan(Time::ZERO).contains(&tup("d", 3)));
        assert!(!t.scan(Time::ZERO).contains(&tup("a", 0)));
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut t = Table::new(spec(None, Some(2), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        // Replacing "a" must not evict "b".
        t.insert(tup("a", 9), Time::ZERO);
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&tup("a", 9)));
        assert!(rows.contains(&tup("b", 1)));
    }

    #[test]
    fn refresh_moves_row_to_back_of_eviction_order() {
        // Soft state that keeps getting re-asserted should be the last
        // to go when the table is full.
        let mut t = Table::new(spec(None, Some(3), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        t.insert(tup("c", 2), Time::ZERO);
        // Refresh "a": it is now the most recently written.
        assert_eq!(t.insert(tup("a", 0), Time::ZERO), InsertOutcome::Refreshed);
        // Inserting "d" evicts the least recently written — "b".
        match t.insert(tup("d", 3), Time::ZERO) {
            InsertOutcome::Inserted { evicted } => assert_eq!(evicted, vec![tup("b", 1)]),
            other => panic!("{other:?}"),
        }
        assert!(t.scan(Time::ZERO).contains(&tup("a", 0)));
    }

    #[test]
    fn eviction_skips_stale_order_entries() {
        // Replacements and deletions leave stale queue entries behind;
        // eviction must skip them rather than double-evict.
        let mut t = Table::new(spec(None, Some(2), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("a", 1), Time::ZERO); // replace: stale entry for seq 0
        t.insert(tup("b", 2), Time::ZERO);
        t.delete_by_key(&tup("b", 0), Time::ZERO); // stale entry for b
        t.insert(tup("c", 3), Time::ZERO);
        t.insert(tup("d", 4), Time::ZERO); // evicts exactly one: "a"
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&tup("c", 3)));
        assert!(rows.contains(&tup("d", 4)));
    }

    #[test]
    fn delete_by_key() {
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        // Deleting matches on the key fields only; other fields may differ.
        let removed = t.delete_by_key(&tup("a", 999), Time::ZERO);
        assert_eq!(removed, Some(tup("a", 0)));
        assert_eq!(t.len(Time::ZERO), 0);
        assert_eq!(t.delete_by_key(&tup("a", 0), Time::ZERO), None);
    }

    #[test]
    fn delete_where() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        for i in 0..5 {
            t.insert(tup("a", i), Time::ZERO);
        }
        let removed = t.delete_where(
            Time::ZERO,
            |x| matches!(x.get(1), Some(Value::Int(n)) if *n % 2 == 0),
        );
        assert_eq!(removed.len(), 3);
        assert_eq!(t.len(Time::ZERO), 2);
    }

    #[test]
    fn scan_eq_filters() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.insert(tup("a", 1), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        t.insert(tup("a", 2), Time::ZERO);
        let hits = t.scan_eq(0, &Value::addr("a"), Time::ZERO);
        assert_eq!(hits.len(), 2);
        let hits = t.scan_eq(1, &Value::Int(1), Time::ZERO);
        assert_eq!(hits.len(), 2);
        let hits = t.scan_eq(1, &Value::Int(99), Time::ZERO);
        assert!(hits.is_empty());
    }

    #[test]
    fn get_by_key() {
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("a", 1), Time::ZERO);
        let key = vec![Value::addr("a")];
        assert_eq!(t.get_by_key(&key, Time::ZERO), Some(&tup("a", 1)));
        assert_eq!(t.get_by_key(&[Value::addr("zz")], Time::ZERO), None);
    }

    #[test]
    fn short_tuple_keys_robustly() {
        // A remote node sends a tuple shorter than the key spec: must not
        // panic, row must be stored and retrievable.
        let mut t = Table::new(spec(None, None, vec![0, 5]));
        let short = Tuple::new("t", [Value::addr("a")]);
        t.insert(short.clone(), Time::ZERO);
        assert_eq!(t.scan(Time::ZERO), vec![short]);
    }

    #[test]
    fn zero_capacity_table_stores_nothing() {
        let mut t = Table::new(spec(None, Some(0), vec![0]));
        t.insert(tup("a", 1), Time::ZERO);
        assert_eq!(t.len(Time::ZERO), 0);
    }

    // ---- secondary indexes & expiry heap -------------------------------

    #[test]
    fn indexed_probe_touches_only_matching_rows() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.ensure_index(0);
        for i in 0..100 {
            t.insert(tup(&format!("n{}", i % 10), i), Time::ZERO);
        }
        let hits = t.scan_eq(0, &Value::addr("n3"), Time::ZERO);
        assert_eq!(hits.len(), 10);
        let s = t.probe_stats();
        assert_eq!(s.index_probes, 1);
        assert_eq!(s.linear_probes, 0);
        // The indexed path never examines a non-matching row.
        assert_eq!(s.rows_scanned, s.rows_returned);
        assert_eq!(s.rows_returned, 10);
    }

    #[test]
    fn indexed_probe_preserves_insertion_order() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.ensure_index(0);
        for i in 0..20 {
            t.insert(tup("a", 19 - i), Time::ZERO);
        }
        let hits = t.scan_eq(0, &Value::addr("a"), Time::ZERO);
        let want: Vec<Tuple> = (0..20).map(|i| tup("a", 19 - i)).collect();
        assert_eq!(hits, want);
    }

    #[test]
    fn ensure_index_backfills_existing_rows() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        for i in 0..10 {
            t.insert(tup(&format!("n{}", i % 2), i), Time::ZERO);
        }
        t.ensure_index(0);
        t.ensure_index(0); // idempotent
        assert_eq!(t.indexed_fields(), vec![0]);
        assert_eq!(t.scan_eq(0, &Value::addr("n1"), Time::ZERO).len(), 5);
        assert_eq!(t.probe_stats().linear_probes, 0);
    }

    #[test]
    fn auto_index_after_threshold() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.set_auto_index_threshold(Some(3));
        for i in 0..10 {
            t.insert(tup(&format!("n{i}"), i), Time::ZERO);
        }
        t.scan_eq(1, &Value::Int(4), Time::ZERO);
        t.scan_eq(1, &Value::Int(4), Time::ZERO);
        assert!(t.indexed_fields().is_empty());
        assert_eq!(t.probe_stats().linear_probes, 2);
        // Third unindexed probe of the same field crosses the threshold.
        t.scan_eq(1, &Value::Int(4), Time::ZERO);
        assert_eq!(t.indexed_fields(), vec![1]);
        let s = t.probe_stats();
        assert_eq!(s.auto_indexes, 1);
        assert_eq!(s.index_probes, 1);
    }

    #[test]
    fn auto_index_disabled_stays_linear() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.set_auto_index_threshold(None);
        t.insert(tup("a", 1), Time::ZERO);
        for _ in 0..100 {
            t.scan_eq(1, &Value::Int(1), Time::ZERO);
        }
        assert!(t.indexed_fields().is_empty());
        assert_eq!(t.probe_stats().linear_probes, 100);
    }

    #[test]
    fn index_tracks_replace_delete_and_eviction() {
        let mut t = Table::new(spec(None, Some(2), vec![0]));
        t.ensure_index(1);
        t.insert(tup("a", 1), Time::ZERO);
        t.insert(tup("a", 2), Time::ZERO); // replace: 1 leaves the index
        assert!(t.scan_eq(1, &Value::Int(1), Time::ZERO).is_empty());
        assert_eq!(t.scan_eq(1, &Value::Int(2), Time::ZERO), vec![tup("a", 2)]);
        t.insert(tup("b", 3), Time::ZERO);
        t.insert(tup("c", 4), Time::ZERO); // evicts "a"
        assert!(t.scan_eq(1, &Value::Int(2), Time::ZERO).is_empty());
        t.delete_by_key(&tup("b", 0), Time::ZERO);
        assert!(t.scan_eq(1, &Value::Int(3), Time::ZERO).is_empty());
        t.delete_where(Time::ZERO, |x| x.get(1) == Some(&Value::Int(4)));
        assert!(t.scan_eq(1, &Value::Int(4), Time::ZERO).is_empty());
        assert_eq!(t.len(Time::ZERO), 0);
    }

    #[test]
    fn index_tracks_expiry() {
        let mut t = Table::new(spec(Some(10), None, vec![0]));
        t.ensure_index(1);
        t.insert(tup("a", 1), Time::ZERO);
        t.insert(tup("b", 1), Time::from_secs(5));
        assert_eq!(t.scan_eq(1, &Value::Int(1), Time::from_secs(9)).len(), 2);
        assert_eq!(
            t.scan_eq(1, &Value::Int(1), Time::from_secs(12)),
            vec![tup("b", 1)]
        );
        assert!(t.scan_eq(1, &Value::Int(1), Time::from_secs(20)).is_empty());
    }

    #[test]
    fn expiry_heap_pops_only_due_entries() {
        let mut t = Table::new(spec(Some(10), None, vec![0]));
        t.insert(tup("a", 1), Time::ZERO); // due at 10
        t.insert(tup("b", 2), Time::from_secs(3)); // due at 13
                                                   // Nothing due yet: no pops.
        assert_eq!(t.len(Time::from_secs(5)), 2);
        assert_eq!(t.probe_stats().heap_pops, 0);
        // Only "a" is due at t=11; exactly one entry pops.
        assert_eq!(t.len(Time::from_secs(11)), 1);
        assert_eq!(t.probe_stats().heap_pops, 1);
        assert_eq!(t.counters().3, 1); // expirations
    }

    #[test]
    fn refresh_invalidates_old_heap_entry() {
        let mut t = Table::new(spec(Some(10), None, vec![0]));
        t.insert(tup("a", 1), Time::ZERO);
        t.insert(tup("a", 1), Time::from_secs(8)); // refresh: new deadline 18
                                                   // The seq-stale entry for deadline 10 pops without dropping the row.
        assert_eq!(t.len(Time::from_secs(12)), 1);
        assert_eq!(t.counters().3, 0);
        assert_eq!(t.len(Time::from_secs(18)), 0);
    }

    #[test]
    fn clear_keeps_indexes_registered() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.ensure_index(0);
        t.insert(tup("a", 1), Time::ZERO);
        t.clear();
        assert_eq!(t.indexed_fields(), vec![0]);
        assert!(t.scan_eq(0, &Value::addr("a"), Time::ZERO).is_empty());
        t.insert(tup("a", 2), Time::ZERO);
        assert_eq!(
            t.scan_eq(0, &Value::addr("a"), Time::ZERO),
            vec![tup("a", 2)]
        );
        assert_eq!(t.probe_stats().linear_probes, 0);
    }

    #[test]
    fn version_tracks_every_observable_mutation() {
        let mut t = Table::new(spec(Some(10), Some(4), vec![0]));
        let v0 = t.version();
        t.insert(tup("a", 1), Time::ZERO);
        let v1 = t.version();
        assert!(v1 > v0, "insert must bump");
        t.insert(tup("a", 1), Time::ZERO);
        let v2 = t.version();
        assert!(v2 > v1, "refresh changes scan order and must bump");
        t.insert(tup("a", 2), Time::ZERO);
        assert!(t.version() > v2, "replace must bump");
        let v3 = t.version();
        t.delete_by_key(&tup("zz", 0), Time::ZERO);
        assert_eq!(t.version(), v3, "no-op delete must not bump");
        t.delete_by_key(&tup("a", 0), Time::ZERO);
        assert!(t.version() > v3, "delete must bump");
        let v4 = t.version();
        t.insert(tup("b", 1), Time::from_secs(1));
        let v5 = t.version();
        assert!(v5 > v4);
        // Expiry (row due at t=11) bumps even through a read.
        t.scan(Time::from_secs(20));
        assert!(t.version() > v5, "expiry must bump");
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        let rows: Vec<Tuple> = (0..40).map(|i| tup(&format!("n{}", i % 7), i)).collect();
        let mut seq = Table::new(spec(Some(10), Some(5), vec![0]));
        for r in rows.clone() {
            seq.insert(r, Time::from_secs(3));
        }
        let mut bat = Table::new(spec(Some(10), Some(5), vec![0]));
        let out = bat.insert_batch(rows, Time::from_secs(3));
        assert_eq!(out.inserted + out.replaced + out.refreshed, 40);
        assert_eq!(bat.scan(Time::from_secs(3)), seq.scan(Time::from_secs(3)));
        assert_eq!(bat.counters().0, seq.counters().0, "inserts");
        assert_eq!(bat.counters().1, seq.counters().1, "replacements");
        assert_eq!(bat.counters().2, seq.counters().2, "evictions");
        // And both expire identically afterwards.
        assert_eq!(bat.len(Time::from_secs(100)), 0);
    }

    proptest! {
        /// The size bound is a hard invariant under arbitrary inserts.
        #[test]
        fn prop_size_bound(ops in proptest::collection::vec((0u8..50, 0i64..10), 1..200)) {
            let mut t = Table::new(spec(None, Some(5), vec![0, 1]));
            for (i, (a, b)) in ops.into_iter().enumerate() {
                t.insert(tup(&format!("n{a}"), b), Time::from_secs(i as u64));
                prop_assert!(t.raw_len() <= 5);
            }
        }

        /// Keys are unique: scanning never yields two rows with the same
        /// primary key.
        #[test]
        fn prop_key_unique(ops in proptest::collection::vec((0u8..10, 0i64..100), 1..100)) {
            let mut t = Table::new(spec(None, None, vec![0]));
            for (a, b) in ops {
                t.insert(tup(&format!("n{a}"), b), Time::ZERO);
            }
            let rows = t.scan(Time::ZERO);
            let mut keys: Vec<_> = rows.iter().map(|r| r.get(0).cloned()).collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), rows.len());
        }

        /// After expiry at time T, no row older than T-lifetime survives.
        #[test]
        fn prop_expiry(times in proptest::collection::vec(0u64..100, 1..50)) {
            let mut t = Table::new(spec(Some(10), None, vec![0, 1]));
            for (i, at) in times.iter().enumerate() {
                t.insert(tup(&format!("n{i}"), i as i64), Time::from_secs(*at));
            }
            let horizon = Time::from_secs(200);
            prop_assert_eq!(t.len(horizon), 0);
        }

        /// Equivalence: under random insert/refresh/replace/delete/expire
        /// interleavings (with eviction and an auto-index flipping on
        /// mid-run), indexed `scan_eq` returns exactly the same tuples in
        /// the same deterministic order as the linear oracle.
        #[test]
        fn prop_indexed_scan_matches_linear_oracle(
            ops in proptest::collection::vec(
                (0u8..10, 0u8..6, 0i64..4, 0i64..3, 0u64..5),
                1..120,
            ),
        ) {
            let tup3 = |a: u8, b: i64, c: i64| {
                Tuple::new("t", [Value::addr(format!("n{a}")), Value::Int(b), Value::Int(c)])
            };
            // `t` uses the real probe path: field 1 indexed up front (the
            // planner case), field 2 auto-indexed after 3 probes (the
            // runtime-fallback case). `m` mirrors every mutation but is
            // only read through the linear oracle.
            let mut t = Table::new(spec(Some(10), Some(4), vec![0]));
            t.ensure_index(1);
            t.set_auto_index_threshold(Some(3));
            let mut m = Table::new(spec(Some(10), Some(4), vec![0]));
            m.set_auto_index_threshold(None);

            let mut now = Time::ZERO;
            for (sel, a, b, c, dt) in ops {
                now = now + TimeDelta::from_secs(dt);
                match sel {
                    0..=5 => {
                        t.insert(tup3(a, b, c), now);
                        m.insert(tup3(a, b, c), now);
                    }
                    6 | 7 => {
                        t.delete_by_key(&tup3(a, 0, 0), now);
                        m.delete_by_key(&tup3(a, 0, 0), now);
                    }
                    8 => {
                        let p = |x: &Tuple| x.get(2) == Some(&Value::Int(c));
                        t.delete_where(now, p);
                        m.delete_where(now, p);
                    }
                    _ => {} // pure time advance
                }
                prop_assert_eq!(
                    t.scan_eq(1, &Value::Int(b), now),
                    m.scan_eq_linear(1, &Value::Int(b), now)
                );
                prop_assert_eq!(
                    t.scan_eq(2, &Value::Int(c), now),
                    m.scan_eq_linear(2, &Value::Int(c), now)
                );
                // scan_eq and its own linear oracle agree on one table too.
                prop_assert_eq!(
                    t.scan_eq(1, &Value::Int(b), now),
                    t.scan_eq_linear(1, &Value::Int(b), now)
                );
                prop_assert_eq!(t.scan(now), m.scan(now));
            }
        }
    }
}
