//! A single soft-state table.

use p2_types::{Time, TimeDelta, Tuple, Value};
use std::collections::{HashMap, VecDeque};

/// Declaration of a table — the runtime form of a `materialize` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Relation name.
    pub name: String,
    /// Row lifetime; `None` means rows never expire.
    pub lifetime: Option<TimeDelta>,
    /// Maximum row count; `None` means unbounded.
    pub max_rows: Option<usize>,
    /// **0-based** primary-key field indexes (the parser's 1-based
    /// `keys(...)` are shifted by the planner).
    pub key_fields: Vec<usize>,
}

impl TableSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        lifetime: Option<TimeDelta>,
        max_rows: Option<usize>,
        key_fields: Vec<usize>,
    ) -> TableSpec {
        TableSpec { name: name.into(), lifetime, max_rows, key_fields }
    }

    /// Extract the primary key of a tuple under this spec.
    ///
    /// Missing fields key as a distinguished empty marker rather than
    /// erroring: remote nodes may send short tuples and the table must
    /// stay robust (the row is still stored and retrievable).
    pub fn key_of(&self, t: &Tuple) -> Vec<Value> {
        self.key_fields
            .iter()
            .map(|&i| t.get(i).cloned().unwrap_or(Value::str("\u{0}missing")))
            .collect()
    }
}

/// What an insert did, reported to the node runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// A new row was added. Carries the rows evicted to make room (empty
    /// unless the table was at its size bound).
    Inserted {
        /// Rows evicted by the size bound, oldest first.
        evicted: Vec<Tuple>,
    },
    /// A row with the same primary key existed and was replaced.
    Replaced {
        /// The previous row.
        old: Tuple,
    },
    /// The identical tuple (same key, same content) was already present;
    /// its lifetime was refreshed but no delta event should fire.
    Refreshed,
}

#[derive(Debug, Clone)]
struct Row {
    tuple: Tuple,
    expires_at: Option<Time>,
    seq: u64,
}

/// A soft-state table: primary-keyed rows with lifetime and size bounds.
///
/// All methods take `now` explicitly; the table never consults a clock of
/// its own, which is what lets the discrete-event simulator drive it on
/// virtual time (DESIGN.md §2.4).
#[derive(Debug, Clone)]
pub struct Table {
    spec: TableSpec,
    rows: HashMap<Vec<Value>, Row>,
    /// Keys in insertion order, with the sequence number they were
    /// enqueued under. Entries go stale when a row is replaced,
    /// refreshed, deleted, or expired; eviction pops and skips stale
    /// entries lazily (an entry is current iff the live row's seq
    /// matches), keeping eviction amortized O(1) instead of a min-scan.
    order: VecDeque<(Vec<Value>, u64)>,
    next_seq: u64,
    /// Monotonic counters for the introspection/metrics tables.
    inserts: u64,
    replacements: u64,
    evictions: u64,
    expirations: u64,
    deletions: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(spec: TableSpec) -> Table {
        Table {
            spec,
            rows: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
            inserts: 0,
            replacements: 0,
            evictions: 0,
            expirations: 0,
            deletions: 0,
        }
    }

    /// The table's declaration.
    pub fn spec(&self) -> &TableSpec {
        &self.spec
    }

    /// Live row count (after expiring stale rows at `now`).
    pub fn len(&mut self, now: Time) -> usize {
        self.expire(now);
        self.rows.len()
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&mut self, now: Time) -> bool {
        self.len(now) == 0
    }

    /// Row count without expiring first (used by metrics snapshots that
    /// must not mutate).
    pub fn raw_len(&self) -> usize {
        self.rows.len()
    }

    /// Approximate bytes held by live tuples (metrics).
    pub fn approx_bytes(&self) -> usize {
        self.rows.values().map(|r| r.tuple.approx_bytes()).sum()
    }

    /// Lifetime counters: (inserts, replacements, evictions, expirations,
    /// deletions).
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (self.inserts, self.replacements, self.evictions, self.expirations, self.deletions)
    }

    /// Drop rows whose lifetime has elapsed. Returns how many were
    /// dropped. Called lazily by every read and write.
    pub fn expire(&mut self, now: Time) -> usize {
        if self.spec.lifetime.is_none() {
            return 0;
        }
        let before = self.rows.len();
        self.rows.retain(|_, r| match r.expires_at {
            Some(t) => t > now,
            None => true,
        });
        let dropped = before - self.rows.len();
        self.expirations += dropped as u64;
        self.compact_order();
        dropped
    }

    /// Drop stale order-queue entries when they dominate, bounding the
    /// queue to O(live rows).
    fn compact_order(&mut self) {
        if self.order.len() > 16 && self.order.len() > 4 * self.rows.len() {
            let rows = &self.rows;
            self.order
                .retain(|(k, s)| rows.get(k).is_some_and(|r| r.seq == *s));
        }
    }

    /// Insert (or replace, or refresh) a tuple.
    pub fn insert(&mut self, tuple: Tuple, now: Time) -> InsertOutcome {
        self.expire(now);
        let key = self.spec.key_of(&tuple);
        let expires_at = self.spec.lifetime.map(|l| now + l);
        let seq = self.next_seq;
        self.next_seq += 1;

        if let Some(existing) = self.rows.get_mut(&key) {
            if existing.tuple == tuple {
                existing.expires_at = expires_at;
                existing.seq = seq;
                self.order.push_back((key, seq));
                return InsertOutcome::Refreshed;
            }
            let old = std::mem::replace(
                existing,
                Row { tuple, expires_at, seq },
            )
            .tuple;
            self.order.push_back((key, seq));
            self.replacements += 1;
            return InsertOutcome::Replaced { old };
        }

        // Evict oldest rows if at the size bound (amortized O(1): pop
        // order entries, skipping stale ones).
        let mut evicted = Vec::new();
        if let Some(max) = self.spec.max_rows {
            if max == 0 {
                // Degenerate bound: nothing is ever stored.
                return InsertOutcome::Inserted { evicted };
            }
            while self.rows.len() >= max {
                match self.order.pop_front() {
                    Some((k, s)) => {
                        let current = self.rows.get(&k).is_some_and(|r| r.seq == s);
                        if current {
                            if let Some(r) = self.rows.remove(&k) {
                                evicted.push(r.tuple);
                                self.evictions += 1;
                            }
                        }
                    }
                    None => break, // only stale entries; cannot happen with rows live
                }
            }
        }
        self.order.push_back((key.clone(), seq));
        self.rows.insert(key, Row { tuple, expires_at, seq });
        self.inserts += 1;
        InsertOutcome::Inserted { evicted }
    }

    /// Remove the row whose primary key matches `tuple`'s. Returns the
    /// removed row, if any. This is the executor for `delete` rules
    /// (paper rules `cs10`/`cs11`).
    pub fn delete_by_key(&mut self, tuple: &Tuple, now: Time) -> Option<Tuple> {
        self.expire(now);
        let key = self.spec.key_of(tuple);
        let removed = self.rows.remove(&key).map(|r| r.tuple);
        if removed.is_some() {
            self.deletions += 1;
        }
        removed
    }

    /// Remove rows matching a predicate. Returns them. Used by the
    /// reference-counted `tupleTable` flush (§2.1.3).
    pub fn delete_where<F: FnMut(&Tuple) -> bool>(
        &mut self,
        now: Time,
        mut pred: F,
    ) -> Vec<Tuple> {
        self.expire(now);
        let keys: Vec<Vec<Value>> = self
            .rows
            .iter()
            .filter(|(_, r)| pred(&r.tuple))
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for k in keys {
            if let Some(r) = self.rows.remove(&k) {
                out.push(r.tuple);
                self.deletions += 1;
            }
        }
        out
    }

    /// Fetch the row with exactly this key.
    pub fn get_by_key(&mut self, key: &[Value], now: Time) -> Option<&Tuple> {
        self.expire(now);
        self.rows.get(key).map(|r| &r.tuple)
    }

    /// Snapshot all live rows (deterministic order: insertion sequence).
    pub fn scan(&mut self, now: Time) -> Vec<Tuple> {
        self.expire(now);
        let mut rows: Vec<&Row> = self.rows.values().collect();
        rows.sort_by_key(|r| r.seq);
        rows.into_iter().map(|r| r.tuple.clone()).collect()
    }

    /// Snapshot rows where field `field` equals `value` — the probe side
    /// of a join. Deterministic order as in [`Table::scan`].
    pub fn scan_eq(&mut self, field: usize, value: &Value, now: Time) -> Vec<Tuple> {
        self.expire(now);
        let mut rows: Vec<&Row> = self
            .rows
            .values()
            .filter(|r| r.tuple.get(field) == Some(value))
            .collect();
        rows.sort_by_key(|r| r.seq);
        rows.into_iter().map(|r| r.tuple.clone()).collect()
    }

    /// Remove every row (used by snapshot resets in tests).
    pub fn clear(&mut self) {
        self.rows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(life: Option<u64>, max: Option<usize>, keys: Vec<usize>) -> TableSpec {
        TableSpec::new("t", life.map(TimeDelta::from_secs), max, keys)
    }

    fn tup(a: &str, b: i64) -> Tuple {
        Tuple::new("t", [Value::addr(a), Value::Int(b)])
    }

    #[test]
    fn insert_and_scan() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        assert!(matches!(
            t.insert(tup("n1", 1), Time::ZERO),
            InsertOutcome::Inserted { .. }
        ));
        t.insert(tup("n1", 2), Time::ZERO);
        assert_eq!(t.len(Time::ZERO), 2);
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows, vec![tup("n1", 1), tup("n1", 2)]);
    }

    #[test]
    fn primary_key_replacement() {
        // Key on field 0 only: second insert with same addr replaces.
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        let out = t.insert(tup("n1", 2), Time::ZERO);
        assert_eq!(out, InsertOutcome::Replaced { old: tup("n1", 1) });
        assert_eq!(t.scan(Time::ZERO), vec![tup("n1", 2)]);
    }

    #[test]
    fn identical_reinsert_refreshes() {
        let mut t = Table::new(spec(Some(10), None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        // Re-insert at t=8 refreshes: row must survive past t=10.
        assert_eq!(
            t.insert(tup("n1", 1), Time::from_secs(8)),
            InsertOutcome::Refreshed
        );
        assert_eq!(t.len(Time::from_secs(15)), 1);
        assert_eq!(t.len(Time::from_secs(19)), 0);
    }

    #[test]
    fn lifetime_expiry() {
        let mut t = Table::new(spec(Some(100), None, vec![0]));
        t.insert(tup("n1", 1), Time::ZERO);
        t.insert(tup("n2", 2), Time::from_secs(50));
        assert_eq!(t.len(Time::from_secs(99)), 2);
        assert_eq!(t.len(Time::from_secs(100)), 1); // first expired at exactly 100
        assert_eq!(t.scan(Time::from_secs(100)), vec![tup("n2", 2)]);
        assert_eq!(t.len(Time::from_secs(151)), 0);
        assert_eq!(t.counters().3, 2); // expirations
    }

    #[test]
    fn size_bound_evicts_oldest() {
        let mut t = Table::new(spec(None, Some(3), vec![0]));
        for (i, n) in ["a", "b", "c"].iter().enumerate() {
            t.insert(tup(n, i as i64), Time::ZERO);
        }
        let out = t.insert(tup("d", 3), Time::ZERO);
        match out {
            InsertOutcome::Inserted { evicted } => {
                assert_eq!(evicted, vec![tup("a", 0)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(t.len(Time::ZERO), 3);
        assert!(t.scan(Time::ZERO).contains(&tup("d", 3)));
        assert!(!t.scan(Time::ZERO).contains(&tup("a", 0)));
    }

    #[test]
    fn replacement_does_not_evict() {
        let mut t = Table::new(spec(None, Some(2), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        // Replacing "a" must not evict "b".
        t.insert(tup("a", 9), Time::ZERO);
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&tup("a", 9)));
        assert!(rows.contains(&tup("b", 1)));
    }

    #[test]
    fn refresh_moves_row_to_back_of_eviction_order() {
        // Soft state that keeps getting re-asserted should be the last
        // to go when the table is full.
        let mut t = Table::new(spec(None, Some(3), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        t.insert(tup("c", 2), Time::ZERO);
        // Refresh "a": it is now the most recently written.
        assert_eq!(t.insert(tup("a", 0), Time::ZERO), InsertOutcome::Refreshed);
        // Inserting "d" evicts the least recently written — "b".
        match t.insert(tup("d", 3), Time::ZERO) {
            InsertOutcome::Inserted { evicted } => assert_eq!(evicted, vec![tup("b", 1)]),
            other => panic!("{other:?}"),
        }
        assert!(t.scan(Time::ZERO).contains(&tup("a", 0)));
    }

    #[test]
    fn eviction_skips_stale_order_entries() {
        // Replacements and deletions leave stale queue entries behind;
        // eviction must skip them rather than double-evict.
        let mut t = Table::new(spec(None, Some(2), vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        t.insert(tup("a", 1), Time::ZERO); // replace: stale entry for seq 0
        t.insert(tup("b", 2), Time::ZERO);
        t.delete_by_key(&tup("b", 0), Time::ZERO); // stale entry for b
        t.insert(tup("c", 3), Time::ZERO);
        t.insert(tup("d", 4), Time::ZERO); // evicts exactly one: "a"
        let rows = t.scan(Time::ZERO);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&tup("c", 3)));
        assert!(rows.contains(&tup("d", 4)));
    }

    #[test]
    fn delete_by_key() {
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("a", 0), Time::ZERO);
        // Deleting matches on the key fields only; other fields may differ.
        let removed = t.delete_by_key(&tup("a", 999), Time::ZERO);
        assert_eq!(removed, Some(tup("a", 0)));
        assert_eq!(t.len(Time::ZERO), 0);
        assert_eq!(t.delete_by_key(&tup("a", 0), Time::ZERO), None);
    }

    #[test]
    fn delete_where() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        for i in 0..5 {
            t.insert(tup("a", i), Time::ZERO);
        }
        let removed = t.delete_where(Time::ZERO, |x| {
            matches!(x.get(1), Some(Value::Int(n)) if *n % 2 == 0)
        });
        assert_eq!(removed.len(), 3);
        assert_eq!(t.len(Time::ZERO), 2);
    }

    #[test]
    fn scan_eq_filters() {
        let mut t = Table::new(spec(None, None, vec![0, 1]));
        t.insert(tup("a", 1), Time::ZERO);
        t.insert(tup("b", 1), Time::ZERO);
        t.insert(tup("a", 2), Time::ZERO);
        let hits = t.scan_eq(0, &Value::addr("a"), Time::ZERO);
        assert_eq!(hits.len(), 2);
        let hits = t.scan_eq(1, &Value::Int(1), Time::ZERO);
        assert_eq!(hits.len(), 2);
        let hits = t.scan_eq(1, &Value::Int(99), Time::ZERO);
        assert!(hits.is_empty());
    }

    #[test]
    fn get_by_key() {
        let mut t = Table::new(spec(None, None, vec![0]));
        t.insert(tup("a", 1), Time::ZERO);
        let key = vec![Value::addr("a")];
        assert_eq!(t.get_by_key(&key, Time::ZERO), Some(&tup("a", 1)));
        assert_eq!(t.get_by_key(&[Value::addr("zz")], Time::ZERO), None);
    }

    #[test]
    fn short_tuple_keys_robustly() {
        // A remote node sends a tuple shorter than the key spec: must not
        // panic, row must be stored and retrievable.
        let mut t = Table::new(spec(None, None, vec![0, 5]));
        let short = Tuple::new("t", [Value::addr("a")]);
        t.insert(short.clone(), Time::ZERO);
        assert_eq!(t.scan(Time::ZERO), vec![short]);
    }

    #[test]
    fn zero_capacity_table_stores_nothing() {
        let mut t = Table::new(spec(None, Some(0), vec![0]));
        t.insert(tup("a", 1), Time::ZERO);
        assert_eq!(t.len(Time::ZERO), 0);
    }

    proptest! {
        /// The size bound is a hard invariant under arbitrary inserts.
        #[test]
        fn prop_size_bound(ops in proptest::collection::vec((0u8..50, 0i64..10), 1..200)) {
            let mut t = Table::new(spec(None, Some(5), vec![0, 1]));
            for (i, (a, b)) in ops.into_iter().enumerate() {
                t.insert(tup(&format!("n{a}"), b), Time::from_secs(i as u64));
                prop_assert!(t.raw_len() <= 5);
            }
        }

        /// Keys are unique: scanning never yields two rows with the same
        /// primary key.
        #[test]
        fn prop_key_unique(ops in proptest::collection::vec((0u8..10, 0i64..100), 1..100)) {
            let mut t = Table::new(spec(None, None, vec![0]));
            for (a, b) in ops {
                t.insert(tup(&format!("n{a}"), b), Time::ZERO);
            }
            let rows = t.scan(Time::ZERO);
            let mut keys: Vec<_> = rows.iter().map(|r| r.get(0).cloned()).collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), rows.len());
        }

        /// After expiry at time T, no row older than T-lifetime survives.
        #[test]
        fn prop_expiry(times in proptest::collection::vec(0u64..100, 1..50)) {
            let mut t = Table::new(spec(Some(10), None, vec![0, 1]));
            for (i, at) in times.iter().enumerate() {
                t.insert(tup(&format!("n{i}"), i as i64), Time::from_secs(*at));
            }
            let horizon = Time::from_secs(200);
            prop_assert_eq!(t.len(horizon), 0);
        }
    }
}
