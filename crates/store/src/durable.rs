//! The durable tier: crash-surviving segment logs (DESIGN.md §2.14).
//!
//! The frozen tier ([`crate::archive`]) makes forensic history immune to
//! soft-state churn, but until now a node *restart* erased it wholesale —
//! the paper's "what happened?" promise evaporated exactly when it
//! mattered most. This module gives sealed segments a home that survives
//! the process: every segment frame the archive seals is appended to a
//! per-relation **segment log** behind a [`DurableStore`], and recovery
//! rebuilds the in-memory archive by replaying those frames through the
//! same seal/compact/retain pipeline that built them.
//!
//! Three properties carry over from the archive and one is new:
//!
//! * **Determinism.** The log is a pure function of the seal stream, and
//!   recovery replays it in order — so a restarted node's archive is a
//!   pure function of what was sealed before the crash, identical across
//!   engines and shard counts.
//! * **No panics on hostile bytes.** Recovery validates every frame with
//!   [`Segment::from_bytes`]; a corrupt frame is **quarantined** (counted,
//!   skipped, never served) and a torn trailing record — the signature of
//!   a crash mid-append — is truncated away, leaving the clean prefix.
//! * **Bounded cost.** Appends are sequential writes; the durability
//!   barrier ([`DurableStore::barrier`]) is the only synchronous point,
//!   paid once per seal.
//! * **Testable failure.** [`FaultPlan`] injects crashes, torn writes,
//!   and bit flips at deterministic points in the append stream, so the
//!   recovery contract is *proven* under failure, not assumed
//!   (`tests/recovery.rs`, `crates/store/tests/archive_props.rs`).
//!
//! ## Log format
//!
//! A relation's log is a concatenation of records, each
//! `[u32 LE frame length][u64 LE FNV-1a of frame][P2AR segment frame]`.
//! Recovery walks records front to back: a record whose declared length
//! runs past the end of the log is a **torn tail** (the crash
//! interrupted the append) and everything from it on is discarded; a
//! record whose checksum or frame validation fails is quarantined and
//! skipped. The checksum is what makes single-bit flips *detectable* —
//! a flip in a value payload byte can otherwise yield a frame that
//! still parses, just with different history. A corrupted length prefix
//! that still "fits" merely desynchronizes the walk — every subsequent
//! misaligned record fails its checksum and quarantines, so recovery
//! still terminates with a valid prefix and never panics.

use crate::archive::{Segment, SegmentError};
use p2_types::rng::fnv1a;
use p2_types::DetRng;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Counters for one node's durable tier, surfaced as `durable.*` sysStat
/// rows by `core::introspect` (absent entirely when durability is off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Times this store has been booted (first boot included): a
    /// restarted node's count exceeds 1, which the ship layer folds into
    /// its announce generation so collectors never mistake post-restart
    /// shipments for stale ones.
    pub boots: u64,
    /// Segment frames appended since the store was created.
    pub appends: u64,
    /// Durability barriers honoured (fsyncs for the file backend).
    pub fsyncs: u64,
    /// Valid segments rebuilt by recovery, cumulative over boots.
    pub recovered_segments: u64,
    /// Bytes discarded from torn log tails, cumulative over boots.
    pub truncated_tail_bytes: u64,
    /// Corrupt frames quarantined by recovery, cumulative over boots.
    pub quarantined: u64,
    /// I/O errors swallowed by the file backend (the store goes quiet
    /// rather than panicking the node; see [`FileDurable`]).
    pub io_errors: u64,
}

/// What one recovery pass found, per relation (sorted by name).
#[derive(Debug, Default)]
pub struct Recovery {
    /// `(relation, valid segments in append order)`.
    pub relations: Vec<(String, Vec<Segment>)>,
    /// Bytes discarded from torn tails across all logs.
    pub truncated_tail_bytes: u64,
    /// Corrupt frames quarantined across all logs.
    pub quarantined: u64,
}

/// A crash-surviving sink for sealed segment frames.
///
/// The archive appends every frame it seals, then calls
/// [`barrier`](DurableStore::barrier); the contract is that everything
/// appended before a returned barrier survives a crash after it. What
/// was appended *after* the last barrier may survive whole, torn, or not
/// at all — recovery tolerates all three.
pub trait DurableStore: fmt::Debug + Send {
    /// Append one sealed segment frame to `relation`'s log.
    fn append(&mut self, relation: &str, frame: &[u8]);
    /// Durability barrier: on return, everything appended so far is
    /// crash-safe.
    fn barrier(&mut self);
    /// Boot (or re-boot) the store: bump the boot counter and rebuild
    /// every relation's valid segment list from its log, truncating torn
    /// tails and quarantining corrupt frames. Called exactly once per
    /// node lifetime, at construction or restart.
    fn recover(&mut self) -> Recovery;
    /// Point-in-time counters.
    fn stats(&self) -> DurableStats;
    /// Current length of `relation`'s log in bytes (fault injection and
    /// tests; 0 for unknown relations).
    fn log_len(&self, relation: &str) -> usize;
    /// Truncate `relation`'s log to its first `keep` bytes — the fault
    /// injector's model of a write torn by a crash.
    fn truncate_log(&mut self, relation: &str, keep: usize);
    /// Flip bit `bit` of byte `offset` in `relation`'s log — the fault
    /// injector's model of silent media corruption.
    fn flip_bit(&mut self, relation: &str, offset: usize, bit: u8);
}

/// Bytes of record header preceding each frame: u32 length + u64 FNV.
const RECORD_HEADER: usize = 12;

/// Walk one log's records, returning the valid segments plus torn-tail
/// and quarantine counts. Never panics, whatever the bytes.
pub fn recover_log(bytes: &[u8]) -> (Vec<Segment>, u64, u64) {
    let mut segments = Vec::new();
    let mut quarantined = 0u64;
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if len > bytes.len() - pos - RECORD_HEADER {
            // Torn tail: the record was being written when the world
            // stopped. Everything before it is intact by construction.
            return (segments, (bytes.len() - pos) as u64, quarantined);
        }
        let sum = u64::from_le_bytes(
            bytes[pos + 4..pos + 12].try_into().unwrap_or([0; 8]), // length checked above; unreachable
        );
        let frame = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        if fnv1a(frame) != sum {
            quarantined += 1;
        } else {
            match Segment::from_bytes(frame) {
                Ok(seg) => segments.push(seg),
                Err(_) => quarantined += 1,
            }
        }
        pos += RECORD_HEADER + len;
    }
    let tail = (bytes.len() - pos) as u64;
    (segments, tail, quarantined)
}

/// Frame one segment as a log record.
fn encode_record(out: &mut Vec<u8>, frame: &[u8]) {
    out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(frame).to_le_bytes());
    out.extend_from_slice(frame);
}

/// Re-encode recovered segments as a clean log (what the file backend
/// rewrites after a dirty recovery, so quarantined frames and torn tails
/// are not re-counted on every subsequent boot).
fn clean_log(segments: &[Segment]) -> Vec<u8> {
    let mut out = Vec::with_capacity(segments.iter().map(|s| RECORD_HEADER + s.len_bytes()).sum());
    for seg in segments {
        encode_record(&mut out, seg.as_bytes());
    }
    out
}

/// The deterministic in-memory backend: logs live in a map, barriers are
/// free, and the whole store is handed across a simulated restart as a
/// value. This is what `Population::restart` moves between node
/// incarnations, so crash-restart runs bit-identically in the simulator
/// at any shard count.
#[derive(Debug, Default)]
pub struct MemDurable {
    logs: BTreeMap<String, Vec<u8>>,
    stats: DurableStats,
}

impl MemDurable {
    /// An empty store.
    pub fn new() -> MemDurable {
        MemDurable::default()
    }
}

impl DurableStore for MemDurable {
    fn append(&mut self, relation: &str, frame: &[u8]) {
        encode_record(self.logs.entry(relation.to_string()).or_default(), frame);
        self.stats.appends += 1;
    }

    fn barrier(&mut self) {
        self.stats.fsyncs += 1;
    }

    fn recover(&mut self) -> Recovery {
        self.stats.boots += 1;
        let mut out = Recovery::default();
        for (relation, log) in self.logs.iter_mut() {
            let (segments, torn, quarantined) = recover_log(log);
            if torn > 0 || quarantined > 0 {
                *log = clean_log(&segments);
            }
            out.truncated_tail_bytes += torn;
            out.quarantined += quarantined;
            self.stats.recovered_segments += segments.len() as u64;
            out.relations.push((relation.clone(), segments));
        }
        self.stats.truncated_tail_bytes += out.truncated_tail_bytes;
        self.stats.quarantined += out.quarantined;
        out
    }

    fn stats(&self) -> DurableStats {
        self.stats
    }

    fn log_len(&self, relation: &str) -> usize {
        self.logs.get(relation).map(Vec::len).unwrap_or(0)
    }

    fn truncate_log(&mut self, relation: &str, keep: usize) {
        if let Some(log) = self.logs.get_mut(relation) {
            log.truncate(keep);
        }
    }

    fn flip_bit(&mut self, relation: &str, offset: usize, bit: u8) {
        if let Some(log) = self.logs.get_mut(relation) {
            if let Some(b) = log.get_mut(offset) {
                *b ^= 1 << (bit % 8);
            }
        }
    }
}

/// Manifest filename inside a [`FileDurable`] directory.
const MANIFEST: &str = "MANIFEST";
/// Manifest format tag (first line).
const MANIFEST_TAG: &str = "p2-durable v1";

/// The file backend: one directory per node, one `rel-<idx>.seglog`
/// file per relation, and a small `MANIFEST` mapping relations to files
/// and carrying the boot counter.
///
/// **Never panics, never errors out of the node.** The directory is
/// created lazily on first append; any I/O failure (disk full,
/// permissions, the directory vanishing) is counted in
/// [`DurableStats::io_errors`] and the offending operation is dropped —
/// a node with a sick disk degrades to in-memory-only archives instead
/// of crashing, exactly as a monitoring system should.
#[derive(Debug)]
pub struct FileDurable {
    dir: PathBuf,
    /// `relation → log file index` (names come from the manifest so a
    /// relation keeps its file across boots).
    files: BTreeMap<String, u64>,
    next_file: u64,
    fsync: bool,
    /// Open append handles, one per touched relation.
    handles: BTreeMap<String, std::fs::File>,
    stats: DurableStats,
}

impl FileDurable {
    /// A store rooted at `dir` (created on first use). `fsync` makes the
    /// durability barrier call `File::sync_data` on every touched log —
    /// off, the barrier only flushes userspace buffers (fine for tests
    /// and crash *simulation*; turn it on when the threat model includes
    /// the whole machine dying).
    pub fn new(dir: impl Into<PathBuf>, fsync: bool) -> FileDurable {
        FileDurable {
            dir: dir.into(),
            files: BTreeMap::new(),
            next_file: 0,
            fsync,
            handles: BTreeMap::new(),
            stats: DurableStats::default(),
        }
    }

    /// The directory this store persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn log_path(&self, idx: u64) -> PathBuf {
        self.dir.join(format!("rel-{idx}.seglog"))
    }

    fn read_manifest(&mut self) {
        let Ok(text) = std::fs::read_to_string(self.dir.join(MANIFEST)) else {
            return; // fresh directory
        };
        for line in text.lines() {
            let mut parts = line.splitn(3, ' ');
            match parts.next() {
                Some("boot") => {
                    if let Some(n) = parts.next().and_then(|s| s.parse::<u64>().ok()) {
                        self.stats.boots = n;
                    }
                }
                Some("rel") => {
                    if let (Some(idx), Some(name)) = (
                        parts.next().and_then(|s| s.parse::<u64>().ok()),
                        parts.next(),
                    ) {
                        self.files.insert(name.to_string(), idx);
                        self.next_file = self.next_file.max(idx + 1);
                    }
                }
                _ => {}
            }
        }
    }

    fn write_manifest(&mut self) {
        let mut text = String::from(MANIFEST_TAG);
        text.push('\n');
        text.push_str(&format!("boot {}\n", self.stats.boots));
        for (name, idx) in &self.files {
            text.push_str(&format!("rel {idx} {name}\n"));
        }
        if std::fs::create_dir_all(&self.dir).is_err()
            || std::fs::write(self.dir.join(MANIFEST), text).is_err()
        {
            self.stats.io_errors += 1;
        }
    }

    fn file_index(&mut self, relation: &str) -> u64 {
        if let Some(&idx) = self.files.get(relation) {
            return idx;
        }
        let idx = self.next_file;
        self.next_file += 1;
        self.files.insert(relation.to_string(), idx);
        self.write_manifest();
        idx
    }
}

impl DurableStore for FileDurable {
    fn append(&mut self, relation: &str, frame: &[u8]) {
        let idx = self.file_index(relation);
        if !self.handles.contains_key(relation) {
            if std::fs::create_dir_all(&self.dir).is_err() {
                self.stats.io_errors += 1;
                return;
            }
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.log_path(idx))
            {
                Ok(f) => {
                    self.handles.insert(relation.to_string(), f);
                }
                Err(_) => {
                    self.stats.io_errors += 1;
                    return;
                }
            }
        }
        let Some(f) = self.handles.get_mut(relation) else {
            return;
        };
        let mut record = Vec::with_capacity(RECORD_HEADER + frame.len());
        encode_record(&mut record, frame);
        if f.write_all(&record).is_err() {
            self.stats.io_errors += 1;
            return;
        }
        self.stats.appends += 1;
    }

    fn barrier(&mut self) {
        for f in self.handles.values_mut() {
            if f.flush().is_err() || (self.fsync && f.sync_data().is_err()) {
                self.stats.io_errors += 1;
            }
        }
        self.stats.fsyncs += 1;
    }

    fn recover(&mut self) -> Recovery {
        self.handles.clear();
        self.files.clear();
        self.next_file = 0;
        self.stats.boots = 0;
        self.read_manifest();
        self.stats.boots += 1;
        let mut out = Recovery::default();
        for (relation, &idx) in &self.files.clone() {
            let path = self.log_path(idx);
            let mut bytes = Vec::new();
            match std::fs::File::open(&path) {
                Ok(mut f) => {
                    if f.read_to_end(&mut bytes).is_err() {
                        self.stats.io_errors += 1;
                        continue;
                    }
                }
                Err(_) => continue, // manifest entry, log never written
            }
            let (segments, torn, quarantined) = recover_log(&bytes);
            if torn > 0 || quarantined > 0 {
                // Rewrite the clean prefix so the damage is counted once,
                // not on every boot, and new appends land after valid
                // records.
                if std::fs::write(&path, clean_log(&segments)).is_err() {
                    self.stats.io_errors += 1;
                }
            }
            out.truncated_tail_bytes += torn;
            out.quarantined += quarantined;
            self.stats.recovered_segments += segments.len() as u64;
            out.relations.push((relation.clone(), segments));
        }
        self.stats.truncated_tail_bytes += out.truncated_tail_bytes;
        self.stats.quarantined += out.quarantined;
        self.write_manifest();
        out
    }

    fn stats(&self) -> DurableStats {
        self.stats
    }

    fn log_len(&self, relation: &str) -> usize {
        self.files
            .get(relation)
            .and_then(|&idx| std::fs::metadata(self.log_path(idx)).ok())
            .map(|m| m.len() as usize)
            .unwrap_or(0)
    }

    fn truncate_log(&mut self, relation: &str, keep: usize) {
        self.handles.remove(relation); // reopen after mutation
        if self.files.is_empty() {
            self.read_manifest(); // fault injection on a reopened dir
        }
        let Some(&idx) = self.files.get(relation) else {
            return;
        };
        let path = self.log_path(idx);
        let Ok(mut bytes) = std::fs::read(&path) else {
            return;
        };
        bytes.truncate(keep);
        if std::fs::write(&path, bytes).is_err() {
            self.stats.io_errors += 1;
        }
    }

    fn flip_bit(&mut self, relation: &str, offset: usize, bit: u8) {
        self.handles.remove(relation);
        if self.files.is_empty() {
            self.read_manifest(); // fault injection on a reopened dir
        }
        let Some(&idx) = self.files.get(relation) else {
            return;
        };
        let path = self.log_path(idx);
        let Ok(mut bytes) = std::fs::read(&path) else {
            return;
        };
        if let Some(b) = bytes.get_mut(offset) {
            *b ^= 1 << (bit % 8);
            if std::fs::write(&path, bytes).is_err() {
                self.stats.io_errors += 1;
            }
        }
    }
}

/// One injected fault, addressed by position in the global append
/// stream (the Nth [`DurableStore::append`] since the plan was armed,
/// counted across boots — restarting does not re-arm a fired fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The node dies *before* append `append` reaches the log: the
    /// frame is lost entirely. Models a crash between seal and write.
    CrashBeforeAppend {
        /// Zero-based index into the append stream.
        append: u64,
    },
    /// The node dies mid-write: only the first `keep_bytes` of append
    /// `append`'s record land. Models a torn write — recovery must
    /// truncate it away.
    TornAppend {
        /// Zero-based index into the append stream.
        append: u64,
        /// Bytes of the record that survive (clamped to its length).
        keep_bytes: usize,
    },
    /// The node dies immediately after the barrier covering append
    /// `append`: the frame is fully durable, everything after is lost.
    CrashAfterBarrier {
        /// Zero-based index into the append stream.
        append: u64,
    },
    /// Silent corruption: after append `append` lands, flip one bit of
    /// its stored frame. The node keeps running; recovery must
    /// quarantine the frame instead of panicking.
    FlipBit {
        /// Zero-based index into the append stream.
        append: u64,
        /// Byte offset within the stored frame (taken modulo its size).
        byte: usize,
        /// Bit index within that byte.
        bit: u8,
    },
}

/// A deterministic schedule of injected faults.
///
/// Plans are data: a test can enumerate crash points exhaustively, or
/// derive a pseudo-random single-fault plan from a seed via
/// [`FaultPlan::seeded`] — the same seed yields the same fault on every
/// engine and shard count, which is what lets `tests/recovery.rs` prove
/// the recovery invariant across a whole seed sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults to inject, each fired at most once.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting the given faults.
    pub fn new(faults: Vec<Fault>) -> FaultPlan {
        FaultPlan { faults }
    }

    /// Derive a single-fault plan from `seed`, spreading fault kind and
    /// position deterministically. Positions may land beyond the run's
    /// actual append count, in which case the fault never fires and the
    /// run is indistinguishable from a fault-free one — a useful control.
    pub fn seeded(seed: u64, max_append: u64) -> FaultPlan {
        let mut rng = DetRng::derive(seed, "faultplan");
        let append = rng.below(max_append.max(1));
        let fault = match rng.below(4) {
            0 => Fault::CrashBeforeAppend { append },
            1 => Fault::TornAppend {
                append,
                keep_bytes: rng.below(96) as usize,
            },
            2 => Fault::CrashAfterBarrier { append },
            _ => Fault::FlipBit {
                append,
                byte: rng.below(4096) as usize,
                bit: (rng.below(8)) as u8,
            },
        };
        FaultPlan::new(vec![fault])
    }
}

/// A [`DurableStore`] decorator that executes a [`FaultPlan`].
///
/// A "crash" here halts the *store*, not the node: once a crash fault
/// fires, every later append and barrier is silently dropped, exactly as
/// if the process had died at that instant — the harness then calls
/// `Population::restart` at a point of its choosing and recovery sees
/// the log as the crash left it. (The node's in-memory state between
/// fault and restart is torn down wholesale by the restart, so nothing
/// it did after the "crash" can leak into the recovered world.) Fired
/// faults stay fired across restarts: the wrapper itself is the object
/// handed to the next incarnation.
#[derive(Debug)]
pub struct FaultingStore {
    inner: Box<dyn DurableStore>,
    plan: FaultPlan,
    fired: Vec<bool>,
    appends: u64,
    halted: bool,
}

impl FaultingStore {
    /// Wrap `inner`, arming `plan`.
    pub fn new(inner: Box<dyn DurableStore>, plan: FaultPlan) -> FaultingStore {
        let fired = vec![false; plan.faults.len()];
        FaultingStore {
            inner,
            plan,
            fired,
            appends: 0,
            halted: false,
        }
    }

    /// Whether a crash fault has fired and the store is dropping writes.
    pub fn halted(&self) -> bool {
        self.halted
    }
}

impl DurableStore for FaultingStore {
    fn append(&mut self, relation: &str, frame: &[u8]) {
        if self.halted {
            return;
        }
        let idx = self.appends;
        self.appends += 1;
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            match *fault {
                Fault::CrashBeforeAppend { append } if append == idx => {
                    self.fired[i] = true;
                    self.halted = true;
                    return; // frame never reaches the log
                }
                Fault::TornAppend { append, keep_bytes } if append == idx => {
                    self.fired[i] = true;
                    let before = self.inner.log_len(relation);
                    self.inner.append(relation, frame);
                    let keep = keep_bytes.min(RECORD_HEADER + frame.len());
                    self.inner.truncate_log(relation, before + keep);
                    self.halted = true;
                    return;
                }
                Fault::FlipBit { append, byte, bit } if append == idx => {
                    self.fired[i] = true;
                    let before = self.inner.log_len(relation);
                    self.inner.append(relation, frame);
                    // Corrupt the stored frame body (skip the length
                    // prefix: a flipped length is the torn-tail case,
                    // which TornAppend already covers).
                    let off = before + RECORD_HEADER + byte % frame.len().max(1);
                    self.inner.flip_bit(relation, off, bit);
                    return; // silent: the node keeps running
                }
                _ => {}
            }
        }
        self.inner.append(relation, frame);
    }

    fn barrier(&mut self) {
        if self.halted {
            return;
        }
        self.inner.barrier();
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            if let Fault::CrashAfterBarrier { append } = *fault {
                if self.appends > append {
                    self.fired[i] = true;
                    self.halted = true;
                }
            }
        }
    }

    fn recover(&mut self) -> Recovery {
        self.halted = false;
        self.inner.recover()
    }

    fn stats(&self) -> DurableStats {
        self.inner.stats()
    }

    fn log_len(&self, relation: &str) -> usize {
        self.inner.log_len(relation)
    }

    fn truncate_log(&mut self, relation: &str, keep: usize) {
        self.inner.truncate_log(relation, keep);
    }

    fn flip_bit(&mut self, relation: &str, offset: usize, bit: u8) {
        self.inner.flip_bit(relation, offset, bit);
    }
}

/// A human-readable recovery report for one store directory — what
/// `p2ql recover --dir` prints. Runs a full recovery pass (boot counter
/// bumps, dirty logs are rewritten clean) and summarizes per relation.
pub fn recovery_report(dir: &Path, out: &mut String) {
    use fmt::Write as _;
    let mut store = FileDurable::new(dir, false);
    let rec = store.recover();
    let stats = store.stats();
    let _ = writeln!(out, "durable store: {}", dir.display());
    let _ = writeln!(out, "  boots: {}", stats.boots);
    for (relation, segments) in &rec.relations {
        let rows: u64 = segments.iter().map(Segment::row_count).sum();
        let bytes: usize = segments.iter().map(Segment::len_bytes).sum();
        let _ = writeln!(
            out,
            "  {relation}: {} segments, {rows} rows, {bytes} bytes",
            segments.len()
        );
    }
    let _ = writeln!(
        out,
        "  recovered {} segments, truncated {} tail bytes, quarantined {} frames",
        stats.recovered_segments, rec.truncated_tail_bytes, rec.quarantined
    );
}

/// Quick validity check used by tests: `true` iff the frame decodes.
pub fn frame_is_valid(frame: &[u8]) -> bool {
    Segment::from_bytes(frame).is_ok()
}

/// Re-exported for callers that match on recovery errors.
pub type DurableSegmentError = SegmentError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::SpilledRow;
    use p2_types::{Time, Tuple, Value};

    fn seg(relation: &str, epoch: u64, n: i64) -> Segment {
        let rows: Vec<SpilledRow> = (0..n)
            .map(|i| SpilledRow {
                tuple: Tuple::new(relation, [Value::addr("n1"), Value::Int(i)]),
                inserted_at: Time::from_secs(epoch),
                dropped_at: Time::from_secs(epoch + 1),
            })
            .collect();
        Segment::build(relation, epoch, epoch, &rows)
    }

    #[test]
    fn mem_round_trip() {
        let mut d = MemDurable::new();
        let a = seg("t", 0, 3);
        let b = seg("t", 1, 2);
        d.append("t", a.as_bytes());
        d.barrier();
        d.append("t", b.as_bytes());
        d.barrier();
        let rec = d.recover();
        assert_eq!(rec.relations.len(), 1);
        assert_eq!(rec.relations[0].1, vec![a, b]);
        assert_eq!(rec.truncated_tail_bytes, 0);
        assert_eq!(rec.quarantined, 0);
        let s = d.stats();
        assert_eq!((s.boots, s.appends, s.fsyncs), (1, 2, 2));
        assert_eq!(s.recovered_segments, 2);
    }

    #[test]
    fn torn_tail_truncates_to_clean_prefix() {
        let mut d = MemDurable::new();
        let a = seg("t", 0, 3);
        let b = seg("t", 1, 2);
        d.append("t", a.as_bytes());
        d.append("t", b.as_bytes());
        let whole = d.log_len("t");
        // Tear the second record at every possible byte.
        for keep in (12 + a.as_bytes().len() + 1)..whole {
            let mut d2 = MemDurable::new();
            d2.append("t", a.as_bytes());
            d2.append("t", b.as_bytes());
            d2.truncate_log("t", keep);
            let rec = d2.recover();
            assert_eq!(rec.relations[0].1, vec![a.clone()], "keep={keep}");
            assert!(rec.truncated_tail_bytes > 0, "keep={keep}");
        }
    }

    #[test]
    fn bit_flip_quarantines_not_panics() {
        let a = seg("t", 0, 3);
        let b = seg("t", 1, 2);
        let reclen = 12 + a.as_bytes().len();
        for off in 0..reclen {
            let mut d = MemDurable::new();
            d.append("t", a.as_bytes());
            d.append("t", b.as_bytes());
            d.flip_bit("t", off, (off % 8) as u8);
            let rec = d.recover();
            // Whatever the flip hit — length prefix or frame body —
            // every recovered segment is one of the originals and the
            // second is never resurrected ahead of the first.
            for s in &rec
                .relations
                .first()
                .map(|r| r.1.clone())
                .unwrap_or_default()
            {
                assert!(*s == a || *s == b, "off={off}");
            }
            // Whether the flip hit the length prefix (torn/misaligned
            // walk) or the frame body (validation failure), the damage
            // must register — a flip can never reconstruct valid bytes.
            assert!(
                rec.quarantined > 0 || rec.truncated_tail_bytes > 0,
                "off={off} damage must be counted"
            );
        }
    }

    #[test]
    fn file_backend_survives_restart() {
        let dir = std::env::temp_dir().join(format!("p2-durable-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = seg("t", 0, 4);
        let b = seg("u", 0, 2);
        {
            let mut d = FileDurable::new(&dir, false);
            d.recover();
            d.append("t", a.as_bytes());
            d.append("u", b.as_bytes());
            d.barrier();
        }
        {
            let mut d = FileDurable::new(&dir, false);
            let rec = d.recover();
            assert_eq!(d.stats().boots, 2, "boot counter persists");
            assert_eq!(rec.relations.len(), 2);
            assert_eq!(rec.relations[0], ("t".to_string(), vec![a.clone()]));
            assert_eq!(rec.relations[1], ("u".to_string(), vec![b.clone()]));
        }
        // Corrupt the tail; the next boot truncates and rewrites clean.
        {
            let mut d = FileDurable::new(&dir, false);
            d.recover();
            d.append("t", a.as_bytes());
            let len = d.log_len("t");
            d.truncate_log("t", len - 3);
            let mut d = FileDurable::new(&dir, false);
            let rec = d.recover();
            assert!(rec.truncated_tail_bytes > 0);
            // Clean after rewrite: a fourth boot sees no damage.
            let mut d = FileDurable::new(&dir, false);
            let rec = d.recover();
            assert_eq!(rec.truncated_tail_bytes, 0);
            assert_eq!(rec.quarantined, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulting_store_crash_points() {
        let a = seg("t", 0, 3);
        let b = seg("t", 1, 3);
        // Crash before append 1: only the first frame survives.
        let mut d = FaultingStore::new(
            Box::new(MemDurable::new()),
            FaultPlan::new(vec![Fault::CrashBeforeAppend { append: 1 }]),
        );
        d.append("t", a.as_bytes());
        d.barrier();
        d.append("t", b.as_bytes());
        d.barrier();
        assert!(d.halted());
        let rec = d.recover();
        assert_eq!(rec.relations[0].1, vec![a.clone()]);
        assert!(!d.halted(), "recovery clears the halt");
        // After recovery the store accepts appends again, and the fired
        // fault does not re-fire.
        d.append("t", b.as_bytes());
        d.barrier();
        let rec = d.recover();
        assert_eq!(rec.relations[0].1, vec![a.clone(), b.clone()]);

        // Torn append: recovery truncates the tail.
        let mut d = FaultingStore::new(
            Box::new(MemDurable::new()),
            FaultPlan::new(vec![Fault::TornAppend {
                append: 1,
                keep_bytes: 7,
            }]),
        );
        d.append("t", a.as_bytes());
        d.barrier();
        d.append("t", b.as_bytes());
        let rec = d.recover();
        assert_eq!(rec.relations[0].1, vec![a.clone()]);
        assert!(rec.truncated_tail_bytes > 0);

        // Bit flip: silent until recovery quarantines.
        let mut d = FaultingStore::new(
            Box::new(MemDurable::new()),
            FaultPlan::new(vec![Fault::FlipBit {
                append: 0,
                byte: 9,
                bit: 2,
            }]),
        );
        d.append("t", a.as_bytes());
        d.append("t", b.as_bytes());
        assert!(!d.halted(), "corruption is silent");
        let rec = d.recover();
        assert_eq!(rec.relations[0].1, vec![b.clone()]);
        assert_eq!(rec.quarantined, 1);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..32 {
            assert_eq!(FaultPlan::seeded(seed, 10), FaultPlan::seeded(seed, 10));
        }
        // Different seeds spread over fault kinds.
        let kinds: std::collections::HashSet<u8> = (0..64)
            .map(|s| match FaultPlan::seeded(s, 10).faults[0] {
                Fault::CrashBeforeAppend { .. } => 0,
                Fault::TornAppend { .. } => 1,
                Fault::CrashAfterBarrier { .. } => 2,
                Fault::FlipBit { .. } => 3,
            })
            .collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn recovery_report_renders() {
        let dir = std::env::temp_dir().join(format!("p2-durable-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = FileDurable::new(&dir, false);
        d.recover();
        d.append("t", seg("t", 0, 2).as_bytes());
        d.barrier();
        drop(d);
        let mut out = String::new();
        recovery_report(&dir, &mut out);
        assert!(out.contains("t: 1 segments"));
        assert!(out.contains("quarantined 0 frames"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
