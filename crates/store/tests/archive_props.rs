//! Property tests for the archive segment codec (DESIGN.md §2.11).
//!
//! Two properties, mirroring the wire-codec suite in `p2-net`:
//!
//! * **Round-trip**: any run of spilled rows freezes into a segment
//!   whose decoded rows are exactly the input — content, arity, and
//!   validity intervals;
//! * **No panics on hostile bytes**: arbitrary byte soup, truncations
//!   of valid frames, and single-byte corruptions must all come back
//!   as typed [`SegmentError`]s, never a panic.

use p2_store::{Segment, SegmentError, SpilledRow};
use p2_types::{Time, Tuple, Value};
use proptest::prelude::*;

fn row(name: &str, ints: Vec<i64>, strs: Vec<String>, at: u64, dropped: u64) -> SpilledRow {
    let vals: Vec<Value> = ints
        .into_iter()
        .map(Value::Int)
        .chain(strs.into_iter().map(Value::str))
        .collect();
    SpilledRow {
        tuple: Tuple::new(name, vals),
        inserted_at: Time(at),
        dropped_at: Time(at.saturating_add(dropped)),
    }
}

proptest! {
    /// Arbitrary spill runs round-trip through the segment codec.
    #[test]
    fn prop_segment_round_trip(
        name in "[a-z]{1,12}",
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(any::<i64>(), 0..6),
                proptest::collection::vec("[ -~]{0,16}", 0..3),
                0u64..1_000_000_000,
                0u64..1_000_000,
            ),
            0..12,
        ),
    ) {
        let rows: Vec<SpilledRow> = specs
            .into_iter()
            .map(|(ints, strs, at, d)| row(&name, ints, strs, at, d))
            .collect();
        let seg = Segment::build(&name, 3, 7, &rows);
        let decoded = Segment::from_bytes(seg.as_bytes()).expect("own frame decodes");
        prop_assert_eq!(decoded.relation(), name.as_str());
        prop_assert_eq!(decoded.row_count(), rows.len() as u64);
        prop_assert_eq!(decoded.rows().expect("rows decode"), rows);
    }

    /// Raw byte soup never panics the decoder.
    #[test]
    fn prop_no_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Segment::from_bytes(&bytes);
    }

    /// Every truncation of a valid frame is a typed error, not a panic
    /// and not a silent partial decode.
    #[test]
    fn prop_truncations_are_typed_errors(
        cut in 0usize..200,
        n in 1usize..6,
    ) {
        let rows: Vec<SpilledRow> = (0..n)
            .map(|i| row("succ", vec![i as i64], vec![], i as u64 * 10, 5))
            .collect();
        let seg = Segment::build("succ", 0, 0, &rows);
        let full = seg.as_bytes();
        prop_assume!(cut < full.len());
        let err = Segment::from_bytes(&full[..cut]);
        prop_assert!(err.is_err(), "truncated frame decoded: cut={cut}");
    }

    /// Single-byte corruption either still decodes (the flip landed in
    /// a value payload that stays well-formed) or fails typed — and a
    /// corrupted magic/version always fails with the right variant.
    #[test]
    fn prop_bit_flips_never_panic(pos in 0usize..200, flip in 1u8..255) {
        let rows: Vec<SpilledRow> =
            (0..4).map(|i| row("succ", vec![i], vec!["x".into()], i as u64, 3)).collect();
        let seg = Segment::build("succ", 1, 2, &rows);
        let mut bytes = seg.as_bytes().to_vec();
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= flip;
        match Segment::from_bytes(&bytes) {
            Ok(_) => {}
            Err(SegmentError::BadMagic(_)) => prop_assert!(pos < 4),
            Err(SegmentError::BadVersion(_)) => prop_assert_eq!(pos, 4),
            Err(_) => {}
        }
    }
}
