//! Property tests for the archive segment codec (DESIGN.md §2.11).
//!
//! Two properties, mirroring the wire-codec suite in `p2-net`:
//!
//! * **Round-trip**: any run of spilled rows freezes into a segment
//!   whose decoded rows are exactly the input — content, arity, and
//!   validity intervals;
//! * **No panics on hostile bytes**: arbitrary byte soup, truncations
//!   of valid frames, and single-byte corruptions must all come back
//!   as typed [`SegmentError`]s, never a panic.

use p2_store::{DurableStore, FileDurable, Segment, SegmentError, SpilledRow};
use p2_types::{Time, Tuple, Value};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory per proptest case (cases run concurrently).
fn scratch_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "p2-archive-props-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// `n` distinct sealed segments, as a fresh file-backed log on disk.
/// Returns the originals and the total log length in bytes.
fn seeded_log(dir: &std::path::Path, n: usize) -> (Vec<Segment>, usize) {
    let segs: Vec<Segment> = (0..n)
        .map(|i| {
            let rows: Vec<SpilledRow> = (0..3)
                .map(|j| row("r", vec![i as i64, j], vec![], i as u64 * 30, 5))
                .collect();
            Segment::build("r", i as u64, i as u64, &rows)
        })
        .collect();
    let mut store = FileDurable::new(dir, false);
    for seg in &segs {
        store.append("r", seg.as_bytes());
    }
    store.barrier();
    let len = store.log_len("r");
    (segs, len)
}

/// The valid segments a fresh boot rebuilds from `dir`'s log of `r`.
fn reboot(dir: &std::path::Path) -> (Vec<Segment>, u64, u64) {
    let mut store = FileDurable::new(dir, false);
    let rec = store.recover();
    let segs = rec
        .relations
        .into_iter()
        .find(|(name, _)| name == "r")
        .map(|(_, s)| s)
        .unwrap_or_default();
    (segs, rec.truncated_tail_bytes, rec.quarantined)
}

fn row(name: &str, ints: Vec<i64>, strs: Vec<String>, at: u64, dropped: u64) -> SpilledRow {
    let vals: Vec<Value> = ints
        .into_iter()
        .map(Value::Int)
        .chain(strs.into_iter().map(Value::str))
        .collect();
    SpilledRow {
        tuple: Tuple::new(name, vals),
        inserted_at: Time(at),
        dropped_at: Time(at.saturating_add(dropped)),
    }
}

proptest! {
    /// Arbitrary spill runs round-trip through the segment codec.
    #[test]
    fn prop_segment_round_trip(
        name in "[a-z]{1,12}",
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(any::<i64>(), 0..6),
                proptest::collection::vec("[ -~]{0,16}", 0..3),
                0u64..1_000_000_000,
                0u64..1_000_000,
            ),
            0..12,
        ),
    ) {
        let rows: Vec<SpilledRow> = specs
            .into_iter()
            .map(|(ints, strs, at, d)| row(&name, ints, strs, at, d))
            .collect();
        let seg = Segment::build(&name, 3, 7, &rows);
        let decoded = Segment::from_bytes(seg.as_bytes()).expect("own frame decodes");
        prop_assert_eq!(decoded.relation(), name.as_str());
        prop_assert_eq!(decoded.row_count(), rows.len() as u64);
        prop_assert_eq!(decoded.rows().expect("rows decode"), rows);
    }

    /// Raw byte soup never panics the decoder.
    #[test]
    fn prop_no_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Segment::from_bytes(&bytes);
    }

    /// Every truncation of a valid frame is a typed error, not a panic
    /// and not a silent partial decode.
    #[test]
    fn prop_truncations_are_typed_errors(
        cut in 0usize..200,
        n in 1usize..6,
    ) {
        let rows: Vec<SpilledRow> = (0..n)
            .map(|i| row("succ", vec![i as i64], vec![], i as u64 * 10, 5))
            .collect();
        let seg = Segment::build("succ", 0, 0, &rows);
        let full = seg.as_bytes();
        prop_assume!(cut < full.len());
        let err = Segment::from_bytes(&full[..cut]);
        prop_assert!(err.is_err(), "truncated frame decoded: cut={cut}");
    }

    /// Single-byte corruption either still decodes (the flip landed in
    /// a value payload that stays well-formed) or fails typed — and a
    /// corrupted magic/version always fails with the right variant.
    #[test]
    fn prop_bit_flips_never_panic(pos in 0usize..200, flip in 1u8..255) {
        let rows: Vec<SpilledRow> =
            (0..4).map(|i| row("succ", vec![i], vec!["x".into()], i as u64, 3)).collect();
        let seg = Segment::build("succ", 1, 2, &rows);
        let mut bytes = seg.as_bytes().to_vec();
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= flip;
        match Segment::from_bytes(&bytes) {
            Ok(_) => {}
            Err(SegmentError::BadMagic(_)) => prop_assert!(pos < 4),
            Err(SegmentError::BadVersion(_)) => prop_assert_eq!(pos, 4),
            Err(_) => {}
        }
    }

    /// File-backed recovery after a crash that truncated the log at ANY
    /// byte offset never panics and always rebuilds a clean *prefix* of
    /// the appended segments — and a second boot sees no damage at all,
    /// because the first rewrote the log clean.
    #[test]
    fn prop_file_recovery_after_any_truncation_is_a_valid_prefix(
        cut in 0usize..8192,
        n in 1usize..6,
    ) {
        let dir = scratch_dir();
        let (segs, len) = seeded_log(&dir, n);
        let cut = cut % (len + 1);
        {
            let mut store = FileDurable::new(&dir, false);
            store.truncate_log("r", cut);
        }
        let (got, torn, quarantined) = reboot(&dir);
        prop_assert!(got.len() <= n);
        for (g, want) in got.iter().zip(&segs) {
            prop_assert_eq!(g.as_bytes(), want.as_bytes(), "prefix byte-match");
        }
        if cut < len {
            prop_assert!(
                torn > 0 || quarantined > 0 || got.len() < n,
                "lost bytes must be accounted for: cut={cut} len={len}"
            );
        } else {
            prop_assert_eq!(got.len(), n, "uncut log recovers whole");
        }
        let (again, torn2, q2) = reboot(&dir);
        prop_assert_eq!(again.len(), got.len(), "clean rewrite is stable");
        prop_assert_eq!((torn2, q2), (0, 0), "damage is counted once");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping ANY single bit of the on-disk log never panics
    /// recovery: records before the flip survive byte-identically,
    /// every recovered segment is one of the originals in order, and
    /// the flipped record is either quarantined or (if the flip tore
    /// the framing) truncated away with everything after it.
    #[test]
    fn prop_file_recovery_after_any_bit_flip_never_panics(
        pos in 0usize..8192,
        bit in 0u8..8,
        n in 1usize..6,
    ) {
        let dir = scratch_dir();
        let (segs, len) = seeded_log(&dir, n);
        let pos = pos % len;
        {
            let mut store = FileDurable::new(&dir, false);
            store.flip_bit("r", pos, bit);
        }
        // Which record the flip landed in: every record ahead of it
        // must recover untouched.
        let mut off = 0usize;
        let mut hit = 0usize;
        for s in &segs {
            let record_bytes = 12 + s.as_bytes().len();
            if pos < off + record_bytes {
                break;
            }
            off += record_bytes;
            hit += 1;
        }
        let (got, _, _) = reboot(&dir);
        prop_assert!(got.len() >= hit, "records before the flip survive");
        prop_assert!(got.len() <= n);
        for (g, want) in got.iter().take(hit).zip(&segs) {
            prop_assert_eq!(g.as_bytes(), want.as_bytes(), "clean prefix");
        }
        // Everything recovered is an original, in order (no invented
        // or reordered frames, whatever the flip did).
        let mut next = 0usize;
        for g in &got {
            let found = segs[next..]
                .iter()
                .position(|w| w.as_bytes() == g.as_bytes());
            prop_assert!(found.is_some(), "recovered frame is an original");
            next += found.unwrap_or(0) + 1;
        }
        let (again, torn2, q2) = reboot(&dir);
        prop_assert_eq!(again.len(), got.len(), "clean rewrite is stable");
        prop_assert_eq!((torn2, q2), (0, 0), "damage is counted once");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
