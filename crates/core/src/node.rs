//! The node runtime: state and public API.
//!
//! A [`Node`] owns the per-node machinery of Figure 1 — catalog, rule
//! strands, timers, tracer, router — but the runtime logic is split
//! across sibling modules, each an `impl Node` block over the same
//! state:
//!
//! * [`crate::scheduler`] — the pump loop, the dispatch budget, and the
//!   timer wheel,
//! * [`crate::router`] — action routing (local loop-back vs network) and
//!   the coalescing outbox,
//! * [`crate::installer`] — program compile/install/uninstall and
//!   trace-table registration.
//!
//! Local deltas flow through [`Node::push_pending`] as **batched runs**:
//! consecutive same-relation tuples share one `DeltaBatch`, so the
//! scheduler can push a whole run through the store in one call when no
//! strand is watching the relation (and fall back to the paper's exact
//! per-tuple interleave when one is).

use crate::metrics::NodeMetrics;
use p2_dataflow::{NullSink, StrandRuntime, TapSink};
use p2_net::Envelope;
use p2_planner::expr::EvalCtx;
use p2_store::Catalog;
use p2_trace::{TraceConfig, Tracer};
use p2_types::{Addr, DetRng, Time, Tuple, Value};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::fmt;

/// Handle to an installed program, for later removal ("piecemeal"
/// deployment and un-deployment of monitoring queries, §1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramId(pub u64);

/// Errors from installing a program on a running node.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// Front-end (parse/validate) failure.
    Compile(p2_overlog::CompileError),
    /// A static-analysis pass found hard errors (warnings and notes do
    /// not reject — they surface through `sysDiag`).
    Analysis(p2_overlog::Diagnostics),
    /// Planning failure.
    Plan(p2_planner::PlanError),
    /// A table re-declaration conflicted with the running catalog.
    Catalog(p2_store::CatalogError),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Compile(e) => write!(f, "{e}"),
            InstallError::Analysis(ds) => match ds.first_error() {
                Some(d) => write!(f, "analysis error [{}]: {}", d.code, d.message),
                None => write!(f, "analysis error"),
            },
            InstallError::Plan(e) => write!(f, "plan error: {e}"),
            InstallError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// Which tables write-through into the archive tier (beyond the trace
/// tables, which are always enrolled when archiving is on — they carry
/// the §3 provenance and have the shortest lifetimes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveEnroll {
    /// Only the tracer's tables spill (`ruleExec`/`tupleTable`/the
    /// event log). The cheapest mode that keeps forensic walks
    /// answerable after trace lifetimes expire.
    TraceOnly,
    /// Every registered table spills, except the `sys*` reflection
    /// tables (they are re-materialized snapshots of live state;
    /// archiving their churn would record the act of looking).
    All,
    /// Trace tables plus exactly the named application tables.
    Named(Vec<String>),
}

/// Archive-tier settings: tuning knobs plus the enrollment policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveMode {
    /// Epoch width, retention budget, compaction threshold.
    pub config: p2_store::ArchiveConfig,
    /// Which tables spill (see [`ArchiveEnroll`]).
    pub enroll: ArchiveEnroll,
}

impl Default for ArchiveMode {
    fn default() -> Self {
        ArchiveMode {
            config: p2_store::ArchiveConfig::default(),
            enroll: ArchiveEnroll::All,
        }
    }
}

/// Where a node's durable segment log lives (DESIGN.md §2.14).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableBackend {
    /// Deterministic in-memory log: survives [`Node::into_durable`] /
    /// [`Node::with_recovered`] handover (the sim harness's restart
    /// path) but not process exit. The default for simulation.
    Memory,
    /// One directory per deployment; each node keeps its manifest and
    /// per-relation `.seglog` files under `<dir>/<sanitized addr>/`.
    Dir(std::path::PathBuf),
}

/// Durability settings: backend, fsync policy, and an optional
/// deterministic fault plan (crash points, torn writes, bit flips)
/// applied to the store for recovery testing.
#[derive(Debug, Clone)]
pub struct DurabilityMode {
    /// Log placement (see [`DurableBackend`]).
    pub backend: DurableBackend,
    /// Whether the seal barrier additionally `fsync`s file-backed logs
    /// (counted either way in `durable.fsyncs`).
    pub fsync: bool,
    /// Deterministic fault injection wrapped around the backend; `None`
    /// in production.
    pub plan: Option<p2_store::FaultPlan>,
}

impl Default for DurabilityMode {
    fn default() -> Self {
        DurabilityMode {
            backend: DurableBackend::Memory,
            fsync: false,
            plan: None,
        }
    }
}

/// Node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Whether execution tracing (taps → `ruleExec`/`tupleTable`) is on.
    pub tracing: bool,
    /// Tracer resource bounds.
    pub trace: TraceConfig,
    /// RNG seed (combined with the address for per-node streams).
    pub seed: u64,
    /// Stagger the first firing of each periodic timer uniformly within
    /// its period (desynchronizes protocol rounds across nodes, as real
    /// deployments are).
    pub stagger_timers: bool,
    /// Work budget per pump, covering both tuple dispatches and strand
    /// pipeline steps: a runaway rule set (e.g. a mutually recursive
    /// event loop) is cut off after this much work and counted in
    /// `NodeMetrics::overflow_drops` / `strand_overflow_drops` instead
    /// of hanging the process.
    pub max_dispatch_per_pump: u64,
    /// Longest same-relation run one `DeltaBatch` may hold. Larger runs
    /// amortize the store's expiry/compaction prologue better; 1
    /// degenerates to the per-tuple engine (the `node_pump` bench knob).
    pub max_delta_batch: usize,
    /// Most payload tuples the router coalesces into one outgoing
    /// envelope before starting a new frame.
    pub envelope_flush_threshold: usize,
    /// Planner options for programs installed on this node. The default
    /// runs every optimizer pass; `PlanOpts::off()` compiles rule bodies
    /// in literal source order (the semantic oracle the optimized plans
    /// are equivalence-tested against).
    pub plan: p2_planner::PlanOpts,
    /// Archive tier (DESIGN.md §2.11): `None` (the default) keeps the
    /// live-only store bit-identical to the pre-archive runtime; `Some`
    /// spills dropped rows of the enrolled tables into epoch-segmented
    /// history, so `past()` scans and forensic replays can range over
    /// state that has already expired.
    pub archive: Option<ArchiveMode>,
    /// Segment-shipping knobs (DESIGN.md §2.12). Inert until a peer is
    /// enrolled or a collector subscribes — the defaults change nothing
    /// on a node that never ships.
    pub ship: crate::ship::ShipConfig,
    /// Order each relation's strand dispatch list by the planner's
    /// stratum annotation (stable within a stratum, so same-stratum
    /// strands keep install order). Off by default: the §2.1.2 schedule
    /// — and with it every golden trace — is install-order dispatch.
    pub stratified_dispatch: bool,
    /// Runtime lint oracle (DESIGN.md §2.13): tag every delta with its
    /// cascade root and depth, and publish per-root maxima as `lint.*`
    /// sysStat rows, so measured cascade depth and per-event output
    /// counts can be checked against the flow analyzer's static bounds.
    /// Off by default; enabling it changes no routing or derivation,
    /// only the bookkeeping.
    pub lint: bool,
    /// Durable segment log (DESIGN.md §2.14): `None` (the default)
    /// keeps the archive purely in memory and every existing trace
    /// byte-identical; `Some` appends each sealed segment to the
    /// configured backend before it becomes visible, so
    /// [`Node::with_recovered`] can rebuild archived history after a
    /// crash. Requires `archive` to be enabled to have any effect.
    pub durability: Option<DurabilityMode>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            tracing: false,
            trace: TraceConfig::default(),
            seed: 0,
            stagger_timers: true,
            max_dispatch_per_pump: 200_000,
            max_delta_batch: 64,
            envelope_flush_threshold: 64,
            plan: p2_planner::PlanOpts::default(),
            archive: None,
            ship: crate::ship::ShipConfig::default(),
            stratified_dispatch: false,
            lint: false,
            durability: None,
        }
    }
}

impl NodeConfig {
    /// Forensic preset: tracing on and every table archived. Install on
    /// nodes under investigation so §3 questions ("why does this entry
    /// exist?", "what did the ring look like at T?") stay answerable
    /// from segments alone after every live lifetime has expired.
    pub fn forensic() -> NodeConfig {
        NodeConfig {
            tracing: true,
            archive: Some(ArchiveMode::default()),
            ..NodeConfig::default()
        }
    }
}

/// Expression-evaluation context handed to strands: virtual (or real)
/// time, the node's deterministic RNG, and its address.
pub(crate) struct NodeCtx<'a> {
    pub(crate) now: Time,
    pub(crate) addr: Addr,
    pub(crate) rng: &'a mut DetRng,
}

impl EvalCtx for NodeCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }
    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn local_addr(&self) -> Addr {
        self.addr.clone()
    }
}

/// A queued run of same-relation local dispatches. `traced` is false for
/// tuples that originate from the tracer's own tables, so trace
/// processing is never itself traced (regress protection; see `p2-trace`
/// docs).
pub(crate) struct DeltaBatch {
    pub(crate) relation: String,
    pub(crate) traced: bool,
    pub(crate) tuples: VecDeque<Tuple>,
    /// Lint-oracle cascade tags, parallel to `tuples` when
    /// `NodeConfig::lint` is on; empty (and never consulted) otherwise.
    pub(crate) tags: VecDeque<Option<crate::lint::LintTag>>,
}

/// One P2 node: catalog, strands, timers, tracer, router.
pub struct Node {
    pub(crate) addr: Addr,
    pub(crate) config: NodeConfig,
    pub(crate) catalog: Catalog,
    pub(crate) strands: Vec<StrandRuntime>,
    /// Strand index per program, for uninstall.
    pub(crate) strand_programs: Vec<ProgramId>,
    pub(crate) event_dispatch: HashMap<String, Vec<usize>>,
    pub(crate) table_dispatch: HashMap<String, Vec<usize>>,
    pub(crate) timers: Vec<crate::scheduler::TimerState>,
    /// Pending firings: (next_fire, timer index). Peeked for scheduling,
    /// popped on firing — O(log n) per timer event instead of a scan
    /// over every installed timer (Figure 4 installs hundreds).
    pub(crate) timer_heap: BinaryHeap<Reverse<(Time, usize)>>,
    pub(crate) tracer: Tracer,
    pub(crate) rng: DetRng,
    pub(crate) pending: VecDeque<DeltaBatch>,
    /// Strands with in-flight pipeline work, ascending — the scheduler's
    /// worklist, replacing an O(strands) scan per pump iteration.
    pub(crate) active_strands: BTreeSet<usize>,
    pub(crate) outbox: Vec<Envelope>,
    pub(crate) watches: HashMap<String, Vec<(Time, Tuple)>>,
    pub(crate) metrics: NodeMetrics,
    /// Shard counters published by the parallel harness (None under the
    /// sequential harness — `sysStat` then carries no `shard.*` rows).
    pub(crate) shard_stats: Option<crate::metrics::ShardStats>,
    pub(crate) next_program: u64,
    /// Plan-time warnings from installed programs (dead rules, ...),
    /// tagged with the owning program for uninstall cleanup.
    pub(crate) plan_diagnostics: Vec<(ProgramId, p2_planner::Diagnostic)>,
    /// Static-analysis warnings/notes per installed program, reflected
    /// into `sysDiag` on introspection refresh.
    pub(crate) analysis_diagnostics: Vec<(ProgramId, p2_overlog::Diagnostic)>,
    /// Segment-shipping coordinator state (DESIGN.md §2.12).
    pub(crate) ship: crate::ship::ShipState,
    /// Runtime lint oracle state (DESIGN.md §2.13); `Some` iff
    /// `NodeConfig::lint` is on.
    pub(crate) lint: Option<crate::lint::LintState>,
}

impl Node {
    /// Create a node at `addr`. With durability configured this is a
    /// *first boot*: the durable store is built from the config and its
    /// (empty) logs recovered, so a fresh node and a restarted one take
    /// the same code path.
    pub fn new(addr: Addr, config: NodeConfig) -> Node {
        Node::boot(addr, config, None)
    }

    /// Re-create a node after a crash, recovering archived history from
    /// the durable store handed over from its previous incarnation (see
    /// [`Node::into_durable`]). Soft state — live tables, timers, trace
    /// state, in-flight strands — is gone by contract; only sealed
    /// segments survive. With `store == None` this is a plain boot.
    pub fn with_recovered(
        addr: Addr,
        config: NodeConfig,
        store: Option<Box<dyn p2_store::DurableStore>>,
    ) -> Node {
        Node::boot(addr, config, store)
    }

    /// Tear the node down and detach its durable store (if any) for
    /// handover to the next incarnation. Everything else is dropped —
    /// the crash loses all soft state.
    pub fn into_durable(mut self) -> Option<Box<dyn p2_store::DurableStore>> {
        self.catalog.take_durable()
    }

    /// Build the durable store described by `mode` (first boot: no
    /// handover). File-backed logs live under `<dir>/<sanitized addr>/`.
    fn build_durable(addr: &Addr, mode: &DurabilityMode) -> Box<dyn p2_store::DurableStore> {
        let inner: Box<dyn p2_store::DurableStore> = match &mode.backend {
            DurableBackend::Memory => Box::new(p2_store::MemDurable::new()),
            DurableBackend::Dir(base) => {
                let leaf: String = addr
                    .as_str()
                    .chars()
                    .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                    .collect();
                Box::new(p2_store::FileDurable::new(base.join(leaf), mode.fsync))
            }
        };
        match &mode.plan {
            Some(plan) => Box::new(p2_store::FaultingStore::new(inner, plan.clone())),
            None => inner,
        }
    }

    fn boot(
        addr: Addr,
        config: NodeConfig,
        handover: Option<Box<dyn p2_store::DurableStore>>,
    ) -> Node {
        let rng = DetRng::derive(config.seed, addr.as_str());
        let tracer = Tracer::new(addr.clone(), config.trace.clone());
        let mut node = Node {
            addr,
            config,
            catalog: Catalog::new(),
            strands: Vec::new(),
            strand_programs: Vec::new(),
            event_dispatch: HashMap::new(),
            table_dispatch: HashMap::new(),
            timers: Vec::new(),
            timer_heap: BinaryHeap::new(),
            tracer,
            rng,
            pending: VecDeque::new(),
            active_strands: BTreeSet::new(),
            outbox: Vec::new(),
            watches: HashMap::new(),
            metrics: NodeMetrics::default(),
            shard_stats: None,
            next_program: 1,
            plan_diagnostics: Vec::new(),
            analysis_diagnostics: Vec::new(),
            ship: crate::ship::ShipState::default(),
            lint: None,
        };
        if node.config.lint {
            node.lint = Some(crate::lint::LintState::default());
        }
        // The archive tier goes up before any table registers, so every
        // registration path can enroll as it goes.
        if let Some(mode) = &node.config.archive {
            node.catalog.enable_archive(mode.config);
        }
        // Durable recovery runs right after the archive tier exists and
        // before any new spill: recovered segments form the clean prefix
        // every later seal appends to.
        if node.config.archive.is_some() {
            if let Some(mode) = node.config.durability.clone() {
                let store = handover.unwrap_or_else(|| Node::build_durable(&node.addr, &mode));
                node.catalog.recover_durability(store);
                // Announce generations must outrun every pre-crash one,
                // or collectors drop the restarted node's first announce
                // as stale; the boot counter gives a monotone epoch.
                if let Some(stats) = node.catalog.durable_stats() {
                    node.ship.announce_gen = stats.boots.saturating_sub(1) << 32;
                }
            }
        }
        if node.config.tracing {
            node.register_trace_tables();
        }
        node.register_introspection_tables();
        node
    }

    /// The node's address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The shard counters last published by the parallel harness, if the
    /// node runs under one.
    pub fn shard_stats(&self) -> Option<&crate::metrics::ShardStats> {
        self.shard_stats.as_ref()
    }

    /// Publish shard counters (the parallel harness calls this after
    /// every run so introspection reflects the parallel engine).
    pub fn set_shard_stats(&mut self, stats: crate::metrics::ShardStats) {
        self.shard_stats = Some(stats);
    }

    /// Measurement counters.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Live tuples across all tables (Figures 6–7 series).
    pub fn live_tuples(&self) -> usize {
        self.catalog.live_tuples()
    }

    /// Approximate memory held by tables + tracer state, bytes.
    pub fn approx_bytes(&self) -> usize {
        self.catalog.approx_bytes() + self.tracer.approx_bytes()
    }

    /// Whether execution tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.config.tracing
    }

    /// Enable or disable execution tracing at runtime (the §4 logging
    /// cost experiment toggles exactly this).
    pub fn set_tracing(&mut self, on: bool) {
        self.config.tracing = on;
        if on {
            self.register_trace_tables();
        }
    }

    /// Direct read access to a table's live rows.
    pub fn table_scan(&mut self, name: &str, now: Time) -> Vec<Tuple> {
        self.catalog.scan(name, now)
    }

    /// The catalog (tests and benches reach through this).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Resolve a traced tuple ID back to content (forensics helper).
    pub fn trace_content_of(&self, id: p2_types::TupleId) -> Option<&Tuple> {
        self.tracer.content_of(id)
    }

    /// The trace ID this node assigned to a tuple it has seen (forensics
    /// entry point: operators pick a response tuple and walk backwards
    /// from its ID, §3.2).
    pub fn trace_id_of(&self, t: &Tuple) -> Option<p2_types::TupleId> {
        self.tracer.lookup_id(t)
    }

    /// Observe every future tuple of relation `name` dispatched at this
    /// node (events and table deltas alike). The observer stand-in for
    /// the paper's operator console.
    pub fn watch(&mut self, name: &str) {
        self.watches.entry(name.to_string()).or_default();
    }

    /// Drain watched tuples of `name` observed so far.
    pub fn take_watched(&mut self, name: &str) -> Vec<(Time, Tuple)> {
        self.watches
            .get_mut(name)
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Peek at watched tuples without draining.
    pub fn watched(&self, name: &str) -> &[(Time, Tuple)] {
        self.watches.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Deliver an envelope (a same-relation batch) from the network.
    pub fn deliver(&mut self, env: Envelope, now: Time) {
        self.metrics.msgs_received += 1;
        // Segment-shipping traffic is infrastructure, not application
        // tuples: intercepted whole, before tracing or dispatch.
        if self.ship_intercept(&env, now) {
            return;
        }
        let Envelope {
            tuples,
            src,
            src_tuple_ids,
            delete,
            ..
        } = env;
        if delete {
            for tuple in &tuples {
                match self.catalog.delete_by_key(tuple, now) {
                    Ok(Some(_)) => {
                        self.metrics.deletes += 1;
                        self.log_event(tuple.name(), "remove", now);
                    }
                    Ok(None) => {}
                    Err(_) => self.metrics.malformed_drops += 1,
                }
            }
            return;
        }
        for (i, tuple) in tuples.into_iter().enumerate() {
            if self.config.tracing {
                match src_tuple_ids.get(i).copied().flatten() {
                    Some(src_id) => {
                        self.tracer.on_receive(&tuple, &src, src_id, now);
                    }
                    None => {
                        // Untraced sender: still memoize locally so
                        // forensic walks terminate at this hop.
                        self.tracer.id_of(&tuple, now);
                    }
                }
            }
            if self.lint.is_some() {
                let tag = self.lint_new_root(tuple.name());
                self.lint_set_route(tag);
            }
            self.push_pending(tuple, true);
        }
        self.lint_set_route(None);
    }

    /// Inject a local tuple (tests, operators, upper layers).
    pub fn inject(&mut self, tuple: Tuple) {
        if self.lint.is_some() {
            let tag = self.lint_new_root(tuple.name());
            self.lint_set_route(tag);
        }
        self.push_pending(tuple, true);
        self.lint_set_route(None);
    }

    /// Run the tracer's reference-count sweep (§2.1.3) and drain table
    /// spill buffers into the archive. The harness calls this
    /// periodically; *when* is immaterial — the archive is a pure
    /// function of each relation's spill stream, and history scans
    /// drain lazily anyway.
    pub fn trace_gc(&mut self, now: Time) {
        if self.config.tracing {
            self.tracer.gc(&mut self.catalog, now);
        }
        self.catalog.archive_maintain();
        // With durability on, the sweep is also the checkpoint: expired
        // history is sealed into the log before announces go out.
        self.catalog.durable_checkpoint(now);
        self.ship_announce_pump(now);
    }

    /// History scan (time travel): every row of `name` whose validity
    /// interval intersects `[t0, t1]` — archived rows first, then
    /// still-live ones. Empty when archiving is disabled or the table
    /// was never enrolled.
    pub fn history_scan(
        &mut self,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
    ) -> Result<Vec<p2_store::ArchivedRow>, p2_store::SegmentError> {
        self.catalog.archive_scan(name, t0, t1, now, &[])
    }

    /// Deployment-wide history scan: this node's own history of `name`
    /// plus every imported origin's, merged in sorted origin order (see
    /// [`p2_store::Catalog::deployment_scan`]).
    pub fn deployment_history_scan(
        &mut self,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
    ) -> Result<Vec<p2_store::ArchivedRow>, p2_store::SegmentError> {
        let local = self.addr.as_str().to_string();
        self.catalog.deployment_scan(&local, name, t0, t1, now, &[])
    }

    /// Refresh the `sysTable`/`sysRule`/`sysStat` introspection tables.
    pub fn refresh_introspection(&mut self, now: Time) {
        crate::introspect::refresh(self, now);
    }

    /// Snapshot of per-strand execution stats (for `sysRule`). Flattens
    /// shared-prefix families: one row per member rule, under the
    /// member's own strand id, with the member's own counters.
    pub fn strand_stats(&self) -> Vec<(String, String, p2_dataflow::StrandStats)> {
        self.strands
            .iter()
            .flat_map(|s| {
                s.branches()
                    .map(|(plan, stats)| (plan.strand_id.clone(), plan.source.clone(), stats))
            })
            .collect()
    }

    /// Number of installed strands (family members counted
    /// individually — sharing a prefix is an execution detail).
    pub fn strand_count(&self) -> usize {
        self.strands.iter().map(|s| s.branch_count()).sum()
    }

    /// Plan-time warnings surfaced by the optimizer for currently
    /// installed programs (dead rules, never-boolean selections).
    pub fn plan_diagnostics(&self) -> impl Iterator<Item = &p2_planner::Diagnostic> + '_ {
        self.plan_diagnostics.iter().map(|(_, d)| d)
    }

    /// Static-analysis warnings and notes for currently installed
    /// programs (typo'd relations, cross-location joins, soft-state
    /// leaks, ...). Also reflected as `sysDiag` tuples on
    /// [`Node::refresh_introspection`].
    pub fn analysis_diagnostics(&self) -> impl Iterator<Item = &p2_overlog::Diagnostic> + '_ {
        self.analysis_diagnostics.iter().map(|(_, d)| d)
    }

    // ------------------------------------------------------------ internal

    /// Queue a local dispatch, coalescing it into the tail batch when it
    /// extends a same-relation run (capped at `max_delta_batch`). Only
    /// *consecutive* runs merge, so cross-relation dispatch order is
    /// exactly the per-tuple engine's.
    pub(crate) fn push_pending(&mut self, tuple: Tuple, traced: bool) {
        let lint_on = self.lint.is_some();
        // Trace/introspection churn is outside the flow model: it never
        // carries cascade attribution, whatever is being routed.
        let tag = if Self::is_internal_relation(tuple.name()) {
            None
        } else {
            self.lint_route_tag()
        };
        if let Some(last) = self.pending.back_mut() {
            if last.traced == traced
                && last.relation == tuple.name()
                && last.tuples.len() < self.config.max_delta_batch
            {
                last.tuples.push_back(tuple);
                if lint_on {
                    last.tags.push_back(tag);
                }
                return;
            }
        }
        self.pending.push_back(DeltaBatch {
            relation: tuple.name().to_string(),
            traced,
            tuples: VecDeque::from([tuple]),
            tags: if lint_on {
                VecDeque::from([tag])
            } else {
                VecDeque::new()
            },
        });
    }

    /// Whether a relation belongs to the trace/introspection machinery
    /// (its churn must not be event-logged, or logging would log itself).
    pub(crate) fn is_internal_relation(name: &str) -> bool {
        matches!(
            name,
            p2_trace::RULE_EXEC
                | p2_trace::TUPLE_TABLE
                | p2_trace::EVENT_LOG
                | p2_net::SHIP_RELATION
                | crate::introspect::SYS_TABLE
                | crate::introspect::SYS_RULE
                | crate::introspect::SYS_STAT
        )
    }

    /// Append a row to the §2.1 system-event log (arrivals/removals),
    /// when enabled.
    pub(crate) fn log_event(&mut self, relation: &str, op: &'static str, now: Time) {
        if !self.config.tracing
            || !self.config.trace.log_events
            || Self::is_internal_relation(relation)
        {
            return;
        }
        let row = Tuple::new(
            p2_trace::EVENT_LOG,
            [
                Value::Addr(self.addr.clone()),
                Value::str(relation),
                Value::str(op),
                Value::Time(now),
            ],
        );
        self.push_pending(row, false);
    }

    /// Fire strand `idx` with a trigger tuple, route its outputs, and
    /// keep the scheduler's worklist in sync with any pipeline work the
    /// firing left behind. `tag` is the trigger's lint-oracle cascade
    /// tag (always `None` with lint off); outputs are stamped and
    /// counted one hop deeper.
    pub(crate) fn fire_strand(
        &mut self,
        idx: usize,
        tuple: &Tuple,
        traced: bool,
        now: Time,
        tag: Option<crate::lint::LintTag>,
    ) {
        if self.lint.is_some() {
            let busy = self.strands[idx].has_work();
            self.lint_on_fire(idx, tag, busy);
        }
        let mut actions = Vec::new();
        let use_tracer = traced && self.config.tracing;
        {
            let mut ctx = NodeCtx {
                now,
                addr: self.addr.clone(),
                rng: &mut self.rng,
            };
            let mut null = NullSink;
            let sink: &mut dyn TapSink = if use_tracer {
                &mut self.tracer
            } else {
                &mut null
            };
            if self.strands[idx].fire(tuple, &mut self.catalog, &mut ctx, sink, now, &mut actions) {
                // Each family member logically fired once.
                self.metrics.strand_firings += self.strands[idx].branch_count() as u64;
            }
        }
        if self.strands[idx].has_work() {
            self.active_strands.insert(idx);
        }
        self.lint_route_actions(idx, &actions);
        for a in actions {
            self.route_action(a, now);
        }
        self.lint_set_route(None);
    }

    /// Stamp and count a strand's outputs for the lint oracle (no-op
    /// with lint off): each non-delete action lands one hop deeper than
    /// the strand's trigger.
    pub(crate) fn lint_route_actions(&mut self, idx: usize, actions: &[p2_dataflow::Action]) {
        if self.lint.is_none() {
            return;
        }
        let out_tag = self.lint_output_tag(idx);
        self.lint_set_route(out_tag);
        for a in actions {
            if !a.delete {
                self.lint_count_output(out_tag);
            }
        }
    }
}

#[cfg(test)]
#[path = "node_tests.rs"]
mod tests;
