//! The node runtime.

use crate::metrics::NodeMetrics;
use p2_dataflow::{Action, NullSink, StrandRuntime, TapSink};
use p2_net::Envelope;
use p2_planner::expr::EvalCtx;
use p2_planner::plan::Trigger;
use p2_planner::{compile_program, PlanError};
use p2_store::{Catalog, InsertOutcome, TableSpec};
use p2_trace::{TraceConfig, Tracer};
use p2_types::{Addr, DetRng, Time, TimeDelta, Tuple, Value};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Handle to an installed program, for later removal ("piecemeal"
/// deployment and un-deployment of monitoring queries, §1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramId(pub u64);

/// Errors from installing a program on a running node.
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// Front-end (parse/validate) failure.
    Compile(p2_overlog::CompileError),
    /// Planning failure.
    Plan(PlanError),
    /// A table re-declaration conflicted with the running catalog.
    Catalog(p2_store::CatalogError),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Compile(e) => write!(f, "{e}"),
            InstallError::Plan(e) => write!(f, "plan error: {e}"),
            InstallError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// Node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Whether execution tracing (taps → `ruleExec`/`tupleTable`) is on.
    pub tracing: bool,
    /// Tracer resource bounds.
    pub trace: TraceConfig,
    /// RNG seed (combined with the address for per-node streams).
    pub seed: u64,
    /// Stagger the first firing of each periodic timer uniformly within
    /// its period (desynchronizes protocol rounds across nodes, as real
    /// deployments are).
    pub stagger_timers: bool,
    /// Dispatch budget per pump: a runaway rule set (e.g. a mutually
    /// recursive event loop) is cut off after this many dispatches and
    /// counted in `NodeMetrics::overflow_drops` instead of hanging the
    /// process.
    pub max_dispatch_per_pump: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            tracing: false,
            trace: TraceConfig::default(),
            seed: 0,
            stagger_timers: true,
            max_dispatch_per_pump: 200_000,
        }
    }
}

/// A periodic timer installed for a `periodic`-triggered strand.
#[derive(Debug, Clone)]
struct TimerState {
    strand_idx: usize,
    period: TimeDelta,
    next_fire: Time,
    program: ProgramId,
}

/// Expression-evaluation context handed to strands: virtual (or real)
/// time, the node's deterministic RNG, and its address.
struct NodeCtx<'a> {
    now: Time,
    addr: Addr,
    rng: &'a mut DetRng,
}

impl EvalCtx for NodeCtx<'_> {
    fn now(&self) -> Time {
        self.now
    }
    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn local_addr(&self) -> Addr {
        self.addr.clone()
    }
}

/// A queued local dispatch. `traced` is false for tuples that originate
/// from the tracer's own tables, so trace processing is never itself
/// traced (regress protection; see `p2-trace` docs).
struct Pending {
    tuple: Tuple,
    traced: bool,
}

/// One P2 node: catalog, strands, timers, tracer, router.
pub struct Node {
    addr: Addr,
    config: NodeConfig,
    catalog: Catalog,
    strands: Vec<StrandRuntime>,
    /// Strand index per program, for uninstall.
    strand_programs: Vec<ProgramId>,
    event_dispatch: HashMap<String, Vec<usize>>,
    table_dispatch: HashMap<String, Vec<usize>>,
    timers: Vec<TimerState>,
    /// Pending firings: (next_fire, timer index). Peeked for scheduling,
    /// popped on firing — O(log n) per timer event instead of a scan
    /// over every installed timer (Figure 4 installs hundreds).
    timer_heap: BinaryHeap<Reverse<(Time, usize)>>,
    tracer: Tracer,
    rng: DetRng,
    pending: VecDeque<Pending>,
    outbox: Vec<Envelope>,
    watches: HashMap<String, Vec<(Time, Tuple)>>,
    metrics: NodeMetrics,
    next_program: u64,
}

impl Node {
    /// Create a node at `addr`.
    pub fn new(addr: Addr, config: NodeConfig) -> Node {
        let rng = DetRng::derive(config.seed, addr.as_str());
        let tracer = Tracer::new(addr.clone(), config.trace.clone());
        let mut node = Node {
            addr,
            config,
            catalog: Catalog::new(),
            strands: Vec::new(),
            strand_programs: Vec::new(),
            event_dispatch: HashMap::new(),
            table_dispatch: HashMap::new(),
            timers: Vec::new(),
            timer_heap: BinaryHeap::new(),
            tracer,
            rng,
            pending: VecDeque::new(),
            outbox: Vec::new(),
            watches: HashMap::new(),
            metrics: NodeMetrics::default(),
            next_program: 1,
        };
        if node.config.tracing {
            node.register_trace_tables();
        }
        node.register_introspection_tables();
        node
    }

    fn register_trace_tables(&mut self) {
        for spec in self.tracer.table_specs() {
            // Idempotent; conflict impossible (we own the specs).
            let _ = self.catalog.register(spec);
        }
        if self.config.trace.log_events {
            let _ = self.catalog.register(TableSpec::new(
                p2_trace::EVENT_LOG,
                Some(TimeDelta::from_secs_f64(self.config.trace.event_log_lifetime_secs)),
                Some(self.config.trace.event_log_max_rows),
                vec![0, 1, 2, 3],
            ));
        }
    }

    fn register_introspection_tables(&mut self) {
        for spec in crate::introspect::table_specs() {
            let _ = self.catalog.register(spec);
        }
    }

    /// The node's address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Measurement counters.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Live tuples across all tables (Figures 6–7 series).
    pub fn live_tuples(&self) -> usize {
        self.catalog.live_tuples()
    }

    /// Approximate memory held by tables + tracer state, bytes.
    pub fn approx_bytes(&self) -> usize {
        self.catalog.approx_bytes() + self.tracer.approx_bytes()
    }

    /// Whether execution tracing is currently enabled.
    pub fn tracing(&self) -> bool {
        self.config.tracing
    }

    /// Enable or disable execution tracing at runtime (the §4 logging
    /// cost experiment toggles exactly this).
    pub fn set_tracing(&mut self, on: bool) {
        self.config.tracing = on;
        if on {
            self.register_trace_tables();
        }
    }

    /// Direct read access to a table's live rows.
    pub fn table_scan(&mut self, name: &str, now: Time) -> Vec<Tuple> {
        self.catalog.scan(name, now)
    }

    /// The catalog (tests and benches reach through this).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Resolve a traced tuple ID back to content (forensics helper).
    pub fn trace_content_of(&self, id: p2_types::TupleId) -> Option<&Tuple> {
        self.tracer.content_of(id)
    }

    /// The trace ID this node assigned to a tuple it has seen (forensics
    /// entry point: operators pick a response tuple and walk backwards
    /// from its ID, §3.2).
    pub fn trace_id_of(&self, t: &Tuple) -> Option<p2_types::TupleId> {
        self.tracer.lookup_id(t)
    }

    /// Observe every future tuple of relation `name` dispatched at this
    /// node (events and table deltas alike). The observer stand-in for
    /// the paper's operator console.
    pub fn watch(&mut self, name: &str) {
        self.watches.entry(name.to_string()).or_default();
    }

    /// Drain watched tuples of `name` observed so far.
    pub fn take_watched(&mut self, name: &str) -> Vec<(Time, Tuple)> {
        self.watches.get_mut(name).map(std::mem::take).unwrap_or_default()
    }

    /// Peek at watched tuples without draining.
    pub fn watched(&self, name: &str) -> &[(Time, Tuple)] {
        self.watches.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Install an OverLog program (source text) on the running node.
    ///
    /// Returns a handle for [`Node::uninstall`]. Predicates are
    /// classified against the tables materialized *at install time*, so
    /// install monitoring programs after the application they observe.
    pub fn install(&mut self, source: &str, now: Time) -> Result<ProgramId, InstallError> {
        let program = p2_overlog::compile(source).map_err(InstallError::Compile)?;
        let known: HashSet<String> = self
            .catalog
            .table_stats()
            .into_iter()
            .map(|(name, _, _)| name)
            .collect();
        let compiled = compile_program(&program, &known).map_err(InstallError::Plan)?;

        // Register tables first (strand classification already done).
        for t in &compiled.tables {
            self.catalog
                .register(TableSpec::new(
                    &t.name,
                    t.lifetime_secs.map(TimeDelta::from_secs_f64),
                    t.max_rows,
                    t.key_fields.clone(),
                ))
                .map_err(InstallError::Catalog)?;
        }

        // Register the secondary indexes the planner's join probes want,
        // so every `scan_eq` on those fields is an index lookup from the
        // strand's first firing. This covers tables the program reads but
        // does not declare (a monitoring query over the base application's
        // tables): joins are only planned against relations materialized
        // here, so the table is already in the catalog. A miss is
        // tolerated anyway — the store's auto-index fallback would pick
        // the field up after a few linear probes.
        for (table, field) in &compiled.index_requests {
            let _ = self.catalog.ensure_index(table, *field);
        }

        let pid = ProgramId(self.next_program);
        self.next_program += 1;

        for strand in compiled.strands {
            let idx = self.strands.len();
            match &strand.trigger {
                Trigger::Event { name } => {
                    self.event_dispatch.entry(name.clone()).or_default().push(idx);
                }
                Trigger::TableInsert { name } => {
                    self.table_dispatch.entry(name.clone()).or_default().push(idx);
                }
                Trigger::Periodic { period_secs } => {
                    let period = TimeDelta::from_secs_f64(*period_secs);
                    let offset = if self.config.stagger_timers {
                        TimeDelta::from_micros(self.rng.below(period.micros().max(1)))
                    } else {
                        period
                    };
                    let tidx = self.timers.len();
                    self.timers.push(TimerState {
                        strand_idx: idx,
                        period,
                        next_fire: now + offset,
                        program: pid,
                    });
                    self.timer_heap.push(Reverse((now + offset, tidx)));
                }
            }
            self.strands.push(StrandRuntime::new(Arc::new(strand)));
            self.strand_programs.push(pid);
        }

        // Inject facts as ordinary dispatches (they may be remote).
        for fact in compiled.facts {
            self.route_tuple(fact, false, now);
        }
        Ok(pid)
    }

    /// Remove a program's strands and timers. Its tables (and their
    /// contents) remain — soft state expires on its own, and other
    /// programs may read them.
    pub fn uninstall(&mut self, pid: ProgramId) {
        let keep: Vec<bool> = self.strand_programs.iter().map(|p| *p != pid).collect();
        // Rebuild the strand vector and all dispatch indexes.
        let mut new_strands = Vec::new();
        let mut new_programs = Vec::new();
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.strands.len());
        for (i, strand) in self.strands.drain(..).enumerate() {
            if keep[i] {
                remap.push(Some(new_strands.len()));
                new_strands.push(strand);
                new_programs.push(self.strand_programs[i]);
            } else {
                remap.push(None);
            }
        }
        self.strands = new_strands;
        self.strand_programs = new_programs;
        for map in [&mut self.event_dispatch, &mut self.table_dispatch] {
            for v in map.values_mut() {
                *v = v.iter().filter_map(|&i| remap[i]).collect();
            }
            map.retain(|_, v| !v.is_empty());
        }
        self.timers.retain_mut(|t| {
            if t.program == pid {
                return false;
            }
            t.strand_idx = remap[t.strand_idx].expect("kept strands remapped");
            true
        });
        // Timer indices shifted: rebuild the heap (uninstall is rare).
        self.timer_heap = self
            .timers
            .iter()
            .enumerate()
            .map(|(i, t)| Reverse((t.next_fire, i)))
            .collect();
    }

    /// Earliest pending timer, for the simulation scheduler.
    ///
    /// The heap top is exact: there is exactly one entry per installed
    /// timer (pushed at install, re-pushed on every firing, and the heap
    /// is rebuilt wholesale on uninstall).
    pub fn next_timer(&self) -> Option<Time> {
        self.timer_heap.peek().map(|Reverse((t, _))| *t)
    }

    /// Fire every timer due at or before `now` (synthesizing `periodic`
    /// event tuples), then pump.
    pub fn fire_timers(&mut self, now: Time) {
        let started = Instant::now();
        while let Some(Reverse((t, i))) = self.timer_heap.peek().copied() {
            if t > now {
                break;
            }
            self.timer_heap.pop();
            let Some(state) = self.timers.get(i) else { continue };
            if state.next_fire != t {
                continue; // stale entry from a rebuild
            }
            let (strand_idx, period) = (state.strand_idx, state.period);
            let mut next = t + period;
            while next <= now {
                next += period; // catch up after long gaps
            }
            self.timers[i].next_fire = next;
            self.timer_heap.push(Reverse((next, i)));
            let nonce = self.rng.next_u64();
            let tuple = Tuple::new(
                "periodic",
                [
                    Value::Addr(self.addr.clone()),
                    Value::id(nonce),
                    Value::Float(period.as_secs_f64()),
                ],
            );
            self.fire_strand(strand_idx, &tuple, true, now);
        }
        self.metrics.busy += started.elapsed();
    }

    /// Deliver an envelope from the network.
    pub fn deliver(&mut self, env: Envelope, now: Time) {
        self.metrics.msgs_received += 1;
        if env.delete {
            match self.catalog.delete_by_key(&env.tuple, now) {
                Ok(Some(_)) => {
                    self.metrics.deletes += 1;
                    self.log_event(env.tuple.name(), "remove", now);
                }
                Ok(None) => {}
                Err(_) => self.metrics.malformed_drops += 1,
            }
            return;
        }
        if self.config.tracing {
            match env.src_tuple_id {
                Some(src_id) => {
                    self.tracer.on_receive(&env.tuple, &env.src, src_id, now);
                }
                None => {
                    // Untraced sender: still memoize locally so forensic
                    // walks terminate at this hop.
                    self.tracer.id_of(&env.tuple, now);
                }
            }
        }
        self.pending.push_back(Pending { tuple: env.tuple, traced: true });
    }

    /// Inject a local tuple (tests, operators, upper layers).
    pub fn inject(&mut self, tuple: Tuple) {
        self.pending.push_back(Pending { tuple, traced: true });
    }

    /// Process until quiescent at virtual time `now`; returns envelopes
    /// to transmit.
    pub fn pump(&mut self, now: Time) -> Vec<Envelope> {
        let started = Instant::now();
        let mut budget = self.config.max_dispatch_per_pump;
        loop {
            let mut did_work = false;

            if let Some(p) = self.pending.pop_front() {
                if budget == 0 {
                    self.metrics.overflow_drops += 1 + self.pending.len() as u64;
                    self.pending.clear();
                } else {
                    budget -= 1;
                    self.dispatch(p.tuple, p.traced, now);
                    did_work = true;
                }
            }

            // Step every strand with in-flight pipeline work.
            for idx in 0..self.strands.len() {
                if self.strands[idx].has_work() {
                    let mut actions = Vec::new();
                    let traced = self.config.tracing;
                    {
                        let mut ctx = NodeCtx {
                            now,
                            addr: self.addr.clone(),
                            rng: &mut self.rng,
                        };
                        let mut null = NullSink;
                        let sink: &mut dyn TapSink = if traced {
                            &mut self.tracer
                        } else {
                            &mut null
                        };
                        self.strands[idx].step(
                            &mut self.catalog,
                            &mut ctx,
                            sink,
                            now,
                            &mut actions,
                        );
                    }
                    for a in actions {
                        self.route_action(a, now);
                    }
                    did_work = true;
                }
            }

            // Flush tracer rows into the catalog; their deltas dispatch
            // untraced.
            if self.config.tracing && self.tracer.pending_len() > 0 {
                for row in self.tracer.drain_rows() {
                    self.pending.push_back(Pending { tuple: row, traced: false });
                }
                did_work = true;
            }

            if !did_work {
                break;
            }
        }
        self.metrics.busy += started.elapsed();
        std::mem::take(&mut self.outbox)
    }

    /// Run the tracer's reference-count sweep (§2.1.3). The harness calls
    /// this periodically.
    pub fn trace_gc(&mut self, now: Time) {
        if self.config.tracing {
            self.tracer.gc(&mut self.catalog, now);
        }
    }

    /// Refresh the `sysTable`/`sysRule`/`sysStat` introspection tables.
    pub fn refresh_introspection(&mut self, now: Time) {
        crate::introspect::refresh(self, now);
    }

    // ------------------------------------------------------------ internal

    /// Whether a relation belongs to the trace/introspection machinery
    /// (its churn must not be event-logged, or logging would log itself).
    fn is_internal_relation(name: &str) -> bool {
        matches!(
            name,
            p2_trace::RULE_EXEC
                | p2_trace::TUPLE_TABLE
                | p2_trace::EVENT_LOG
                | crate::introspect::SYS_TABLE
                | crate::introspect::SYS_RULE
                | crate::introspect::SYS_STAT
        )
    }

    /// Append a row to the §2.1 system-event log (arrivals/removals),
    /// when enabled.
    fn log_event(&mut self, relation: &str, op: &'static str, now: Time) {
        if !self.config.tracing
            || !self.config.trace.log_events
            || Self::is_internal_relation(relation)
        {
            return;
        }
        let row = Tuple::new(
            p2_trace::EVENT_LOG,
            [
                Value::Addr(self.addr.clone()),
                Value::str(relation),
                Value::str(op),
                Value::Time(now),
            ],
        );
        self.pending.push_back(Pending { tuple: row, traced: false });
    }

    /// Dispatch one tuple through the demux: watches, table insert (and
    /// delta strands) or event strands.
    fn dispatch(&mut self, tuple: Tuple, traced: bool, now: Time) {
        self.metrics.tuples_dispatched += 1;
        if let Some(log) = self.watches.get_mut(tuple.name()) {
            log.push((now, tuple.clone()));
        }
        if traced {
            self.log_event(tuple.name(), "arrive", now);
        }
        let name = tuple.name().to_string();
        if self.catalog.is_materialized(&name) {
            match self.catalog.insert(tuple.clone(), now) {
                Ok(InsertOutcome::Refreshed) => return, // no delta
                Ok(_) => {}
                Err(_) => {
                    self.metrics.malformed_drops += 1;
                    return;
                }
            }
            if let Some(idxs) = self.table_dispatch.get(&name).cloned() {
                for idx in idxs {
                    self.fire_strand(idx, &tuple, traced, now);
                }
            }
        } else if let Some(idxs) = self.event_dispatch.get(&name).cloned() {
            for idx in idxs {
                self.fire_strand(idx, &tuple, traced, now);
            }
        }
    }

    fn fire_strand(&mut self, idx: usize, tuple: &Tuple, traced: bool, now: Time) {
        let mut actions = Vec::new();
        let use_tracer = traced && self.config.tracing;
        {
            let mut ctx = NodeCtx { now, addr: self.addr.clone(), rng: &mut self.rng };
            let mut null = NullSink;
            let sink: &mut dyn TapSink =
                if use_tracer { &mut self.tracer } else { &mut null };
            if self.strands[idx].fire(tuple, &mut self.catalog, &mut ctx, sink, now, &mut actions)
            {
                self.metrics.strand_firings += 1;
            }
        }
        for a in actions {
            self.route_action(a, now);
        }
    }

    fn route_action(&mut self, action: Action, now: Time) {
        let Action { tuple, delete } = action;
        self.route_tuple(tuple, delete, now);
    }

    /// Route a tuple by its location field: local loop-back or network.
    fn route_tuple(&mut self, tuple: Tuple, delete: bool, now: Time) {
        let dst = match tuple.location() {
            Ok(a) => a.clone(),
            Err(_) => {
                self.metrics.malformed_drops += 1;
                return;
            }
        };
        if dst == self.addr {
            if delete {
                if let Ok(Some(_)) = self.catalog.delete_by_key(&tuple, now) {
                    self.metrics.deletes += 1;
                    self.log_event(tuple.name(), "remove", now);
                }
            } else {
                self.pending.push_back(Pending { tuple, traced: true });
            }
            return;
        }
        let src_tuple_id = if self.config.tracing {
            Some(self.tracer.on_send(&tuple, &dst, now))
        } else {
            None
        };
        self.metrics.msgs_sent += 1;
        self.outbox.push(Envelope {
            tuple,
            src: self.addr.clone(),
            dst,
            src_tuple_id,
            delete,
        });
    }

    /// Snapshot of per-strand execution stats (for `sysRule`).
    pub fn strand_stats(&self) -> Vec<(String, String, p2_dataflow::StrandStats)> {
        self.strands
            .iter()
            .map(|s| {
                (
                    s.plan().strand_id.clone(),
                    s.plan().source.clone(),
                    s.stats(),
                )
            })
            .collect()
    }

    /// Number of installed strands.
    pub fn strand_count(&self) -> usize {
        self.strands.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str) -> Node {
        Node::new(Addr::new(name), NodeConfig { stagger_timers: false, ..Default::default() })
    }

    #[test]
    fn install_and_fact_insertion() {
        let mut n = node("n1");
        n.install(
            "materialize(link, infinity, infinity, keys(1, 2)).
             link@\"n1\"(\"n2\", 3).",
            Time::ZERO,
        )
        .unwrap();
        let out = n.pump(Time::ZERO);
        assert!(out.is_empty());
        let rows = n.table_scan("link", Time::ZERO);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), Some(&Value::str("n2")));
    }

    #[test]
    fn event_rule_chain_and_routing() {
        let mut n = node("n1");
        n.install(
            "r1 hop@\"n2\"(X) :- go@N(X).
             r2 local@N(X) :- go@N(X).",
            Time::ZERO,
        )
        .unwrap();
        n.watch("local");
        n.inject(Tuple::new("go", [Value::addr("n1"), Value::Int(5)]));
        let out = n.pump(Time::ZERO);
        // r1's head routes to n2 over the network.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Addr::new("n2"));
        assert_eq!(out[0].tuple.name(), "hop");
        // r2's head is a local event, observed by the watch.
        assert_eq!(n.watched("local").len(), 1);
        assert_eq!(n.metrics().msgs_sent, 1);
    }

    #[test]
    fn table_delta_rules_fire() {
        let mut n = node("n1");
        n.install(
            "materialize(succ, infinity, infinity, keys(1, 2)).
             d twice@N(S) :- succ@N(S).",
            Time::ZERO,
        )
        .unwrap();
        n.watch("twice");
        n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(9)]));
        n.pump(Time::ZERO);
        assert_eq!(n.watched("twice").len(), 1);
        // Identical re-insertion refreshes without a delta.
        n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(9)]));
        n.pump(Time::ZERO);
        assert_eq!(n.watched("twice").len(), 1, "refresh must not re-fire");
    }

    #[test]
    fn periodic_timer_fires_and_reschedules() {
        let mut n = node("n1");
        n.install("p tick@N(E) :- periodic@N(E, 2).", Time::ZERO).unwrap();
        n.watch("tick");
        assert_eq!(n.next_timer(), Some(Time::from_secs(2)));
        n.fire_timers(Time::from_secs(2));
        n.pump(Time::from_secs(2));
        assert_eq!(n.watched("tick").len(), 1);
        assert_eq!(n.next_timer(), Some(Time::from_secs(4)));
        // Catch-up: far-future firing fires once and reschedules beyond.
        n.fire_timers(Time::from_secs(11));
        n.pump(Time::from_secs(11));
        assert_eq!(n.watched("tick").len(), 2);
        assert!(n.next_timer().unwrap() > Time::from_secs(11));
    }

    #[test]
    fn delete_rule_removes_rows() {
        let mut n = node("n1");
        n.install(
            "materialize(t, infinity, infinity, keys(1, 2)).
             t@\"n1\"(1). t@\"n1\"(2).
             d delete t@N(X) :- zap@N(X).",
            Time::ZERO,
        )
        .unwrap();
        n.pump(Time::ZERO);
        assert_eq!(n.table_scan("t", Time::ZERO).len(), 2);
        n.inject(Tuple::new("zap", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        let rows = n.table_scan("t", Time::ZERO);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), Some(&Value::Int(2)));
        assert_eq!(n.metrics().deletes, 1);
    }

    #[test]
    fn remote_delivery_and_delete() {
        let mut n = node("n2");
        n.install("materialize(t, infinity, infinity, keys(1, 2)).", Time::ZERO)
            .unwrap();
        let t = Tuple::new("t", [Value::addr("n2"), Value::Int(7)]);
        n.deliver(Envelope::new(t.clone(), Addr::new("n1"), Addr::new("n2")), Time::ZERO);
        n.pump(Time::ZERO);
        assert_eq!(n.table_scan("t", Time::ZERO).len(), 1);
        // Remote delete.
        let mut del = Envelope::new(t, Addr::new("n1"), Addr::new("n2"));
        del.delete = true;
        n.deliver(del, Time::ZERO);
        assert_eq!(n.table_scan("t", Time::ZERO).len(), 0);
    }

    #[test]
    fn tracing_produces_rule_exec_rows() {
        let mut n = Node::new(
            Addr::new("n1"),
            NodeConfig { tracing: true, stagger_timers: false, ..Default::default() },
        );
        n.install(
            "materialize(prec, infinity, infinity, keys(1, 2)).
             prec@\"n1\"(4).
             r1 head@N(Z) :- ev@N(Z), prec@N(Z).",
            Time::ZERO,
        )
        .unwrap();
        n.pump(Time::ZERO);
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
        n.pump(Time::ZERO);
        let execs = n.table_scan("ruleExec", Time::ZERO);
        // The paper's worked example: 2 rows (event cause + precondition
        // cause) — but the fact insertion itself is untraced here because
        // facts fire no strands; only r1's execution shows up.
        assert_eq!(execs.len(), 2);
        let tt = n.table_scan("tupleTable", Time::ZERO);
        assert!(tt.len() >= 3);
    }

    #[test]
    fn tracing_off_produces_nothing() {
        let mut n = node("n1");
        n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        assert!(n.table_scan("ruleExec", Time::ZERO).is_empty());
    }

    #[test]
    fn uninstall_removes_strands_and_timers() {
        let mut n = node("n1");
        let keep = n.install("k out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
        let gone = n
            .install("g out2@N(E) :- periodic@N(E, 5).", Time::ZERO)
            .unwrap();
        assert_eq!(n.strand_count(), 2);
        assert!(n.next_timer().is_some());
        n.uninstall(gone);
        assert_eq!(n.strand_count(), 1);
        assert!(n.next_timer().is_none());
        // The kept rule still works.
        n.watch("out");
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        assert_eq!(n.watched("out").len(), 1);
        let _ = keep;
    }

    #[test]
    fn runaway_rules_hit_dispatch_budget() {
        let mut n = Node::new(
            Addr::new("n1"),
            NodeConfig {
                max_dispatch_per_pump: 1_000,
                stagger_timers: false,
                ..Default::default()
            },
        );
        // a and b feed each other forever.
        n.install("r1 a@N(X) :- b@N(X). r2 b@N(X) :- a@N(X).", Time::ZERO).unwrap();
        n.inject(Tuple::new("a", [Value::addr("n1"), Value::Int(0)]));
        n.pump(Time::ZERO); // must terminate
        assert!(n.metrics().overflow_drops > 0);
    }

    #[test]
    fn malformed_location_is_counted_not_fatal() {
        let mut n = node("n1");
        n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
        // Event whose bound location is a non-address: head location
        // coercion turns strings into addrs, but an Int location fails.
        n.inject(Tuple::new("ev", [Value::Int(9), Value::Int(1)]));
        n.pump(Time::ZERO);
        // The trigger bound N := Int(9); the head built out(9, 1) whose
        // location is not an address → dropped and counted.
        assert_eq!(n.metrics().malformed_drops, 1);
    }

    #[test]
    fn watch_take_and_peek() {
        let mut n = node("n1");
        n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
        n.watch("out");
        for i in 0..3 {
            n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(i)]));
        }
        n.pump(Time::ZERO);
        assert_eq!(n.watched("out").len(), 3);
        let taken = n.take_watched("out");
        assert_eq!(taken.len(), 3);
        assert!(n.watched("out").is_empty(), "take drains");
        // Watch keeps observing after a drain.
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(9)]));
        n.pump(Time::ZERO);
        assert_eq!(n.watched("out").len(), 1);
    }

    #[test]
    fn tracing_toggles_at_runtime() {
        let mut n = node("n1");
        n.install(
            "materialize(prec, infinity, infinity, keys(1, 2)).
             prec@\"n1\"(4).
             r1 head@N(Z) :- ev@N(Z), prec@N(Z).",
            Time::ZERO,
        )
        .unwrap();
        n.pump(Time::ZERO);
        assert!(!n.tracing());
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
        n.pump(Time::ZERO);
        assert!(n.table_scan("ruleExec", Time::ZERO).is_empty());
        // Flip tracing on mid-life: subsequent executions are traced.
        n.set_tracing(true);
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
        n.pump(Time::ZERO);
        assert_eq!(n.table_scan("ruleExec", Time::ZERO).len(), 2);
        // And off again.
        n.set_tracing(false);
        let before = n.table_scan("ruleExec", Time::ZERO).len();
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
        n.pump(Time::ZERO);
        assert_eq!(n.table_scan("ruleExec", Time::ZERO).len(), before);
    }

    #[test]
    fn event_log_records_arrivals_and_removals() {
        let mut cfg = NodeConfig { tracing: true, stagger_timers: false, ..Default::default() };
        cfg.trace.log_events = true;
        let mut n = Node::new(Addr::new("n1"), cfg);
        n.install(
            "materialize(t, infinity, infinity, keys(1, 2)).
             d delete t@N(X) :- zap@N(X), t@N(X).",
            Time::ZERO,
        )
        .unwrap();
        n.inject(Tuple::new("t", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        n.inject(Tuple::new("zap", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        let log = n.table_scan(p2_trace::EVENT_LOG, Time::ZERO);
        let ops: Vec<(String, String)> = log
            .iter()
            .filter_map(|r| Some((r.get(1)?.to_string(), r.get(2)?.to_string())))
            .collect();
        assert!(ops.contains(&("t".into(), "arrive".into())), "{ops:?}");
        assert!(ops.contains(&("zap".into(), "arrive".into())), "{ops:?}");
        assert!(ops.contains(&("t".into(), "remove".into())), "{ops:?}");
        // The log never logs itself or the trace tables.
        assert!(ops.iter().all(|(rel, _)| rel != "eventLog" && rel != "ruleExec"));
    }

    #[test]
    fn event_log_off_by_default() {
        let mut n = Node::new(
            Addr::new("n1"),
            NodeConfig { tracing: true, stagger_timers: false, ..Default::default() },
        );
        n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        assert!(n.table_scan(p2_trace::EVENT_LOG, Time::ZERO).is_empty());
    }

    #[test]
    fn install_registers_join_probe_indexes() {
        let mut n = node("n1");
        n.install(
            "materialize(pred, infinity, 16, keys(1)).
             materialize(succ, infinity, 16, keys(1, 2)).
             r1 out@N(P) :- ev@N(X), pred@N(PID, P), succ@N(X, S).",
            Time::ZERO,
        )
        .unwrap();
        // pred is probed on no selective field beyond the location (both
        // body fields bind), so only its location could be probed; succ is
        // probed on field 1 (X is bound by the trigger).
        assert_eq!(n.catalog_mut().indexed_fields("succ"), vec![1]);
        // A second program over the *same* base tables adds its own index
        // without re-declaring them.
        n.install(
            "q1 hit@N(S) :- chk@N(S), succ@N(X, S).",
            Time::ZERO,
        )
        .unwrap();
        assert_eq!(n.catalog_mut().indexed_fields("succ"), vec![1, 2]);
    }

    #[test]
    fn install_errors_are_typed() {
        let mut n = node("n1");
        assert!(matches!(
            n.install("r1 out@A(X) :- .", Time::ZERO),
            Err(InstallError::Compile(_))
        ));
        assert!(matches!(
            n.install("r h@N() :- e1@N(X), e2@N(Y).", Time::ZERO),
            Err(InstallError::Plan(_))
        ));
        n.install("materialize(t, 10, 10, keys(1)).", Time::ZERO).unwrap();
        assert!(matches!(
            n.install("materialize(t, 99, 10, keys(1)).", Time::ZERO),
            Err(InstallError::Catalog(_))
        ));
    }
}
