//! The parallel population harness: conservative-window sharded
//! simulation with a deterministic cross-shard merge (DESIGN.md §2.10).
//!
//! [`ParallelHarness`] splits the node population round-robin across
//! shards, each owning its nodes and one shard-local [`SimNetwork`]
//! fabric, and advances virtual time in **conservative windows** of the
//! network's base latency: because every envelope takes at least
//! `SimConfig.latency` to arrive, no envelope sent inside window *k* can
//! be delivered inside window *k* — shards therefore execute a window
//! with no communication at all, and exchange mailboxes at a barrier
//! between windows. With more than one shard the windows run on OS
//! worker threads (std `mpsc` only); with one shard they run inline.
//!
//! **Determinism.** Every send is stamped `(sent_at, epoch, src_idx,
//! seq)` — see [`p2_net::Stamp`] — and every fabric orders deliveries by
//! `(deliver_at, stamp)`. Stamps are chronological within a run, and the
//! sequential harness's tie-break (its global send counter) agrees with
//! the stamp order, so **any shard count, including 1, produces
//! bit-identical output to [`crate::SimHarness`]**: same tuple stores,
//! same tracer tuple IDs, same counters, same golden traces. The one
//! excluded surface is wall-clock measurements (`busyMicros`), which are
//! non-deterministic under any harness. Programs that exhaust the
//! per-pump dispatch budget (`NodeConfig::max_dispatch_per_pump`, a
//! runaway-rule guard) are also outside the contract: the sequential
//! loop re-pumps a budget-stalled node at other nodes' event instants,
//! which a shard that skips those instants will not reproduce.
//!
//! Within a window a shard replays exactly what the sequential loop
//! would do at each of its event instants: fire due timers, sweep the
//! tracer on GC instants, then settle in waves (pump all live nodes,
//! deliver everything due) with one stamp epoch per wave. Tracer GC is a
//! population-global event, so GC instants run as dedicated
//! single-instant windows in which every shard participates.

use crate::harness::Population;
use crate::metrics::ShardStats;
use crate::node::{InstallError, Node, NodeConfig, ProgramId};
use p2_net::{NetStats, SimConfig, SimNetwork, StampedEnvelope};
use p2_types::{Addr, Time, TimeDelta, Tuple};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::time::Duration;

/// One shard's slice of the population: its nodes (in global insertion
/// order, restricted), their inboxes, and the shard-local fabric.
struct ShardNode {
    addr: Addr,
    node: Node,
    inbox: VecDeque<p2_net::Envelope>,
}

struct Shard {
    id: usize,
    nodes: Vec<ShardNode>,
    local_idx: HashMap<Addr, usize>,
    net: SimNetwork,
    stats: ShardStats,
    /// Per-node "might have runnable work" flags, reused across instants
    /// (always all-false between instants).
    dirty: Vec<bool>,
    /// Nodes whose state changed this instant (their cached timer needs
    /// recomputing). Drained at the end of every instant.
    touched: Vec<usize>,
    /// Cached `Node::next_timer` per node, so the per-instant fire scan
    /// and `next_event` read a flat vector instead of peeking every
    /// node's timer heap. Refreshed wholesale at `run_until` entry
    /// (control ops between runs can change any timer) and
    /// incrementally for touched nodes inside a window.
    timers: Vec<Option<Time>>,
    /// Cached down-ness per local node — crash/revive only happen
    /// between runs, so this is constant across a window and saves an
    /// address hash per node per scan. Synced in `refresh_caches`.
    down: Vec<bool>,
}

/// One conservative window's work order for a shard.
struct WindowCmd {
    start: Time,
    end: Time,
    gc: bool,
    /// Stamp epoch the first instant starts at, when that instant
    /// continues a virtual time the coordinator already stamped at
    /// (control ops can leave timers due at the current instant).
    epoch_base: u32,
    /// Cross-shard envelopes routed to this shard since it last ran.
    incoming: Vec<StampedEnvelope>,
}

/// What a shard reports back at the window barrier.
struct WindowReply {
    shard: usize,
    outbound: Vec<StampedEnvelope>,
    next_event: Option<Time>,
    /// Last instant executed and the next free stamp epoch at it.
    last: Option<(Time, u32)>,
}

impl Shard {
    /// Re-sync the timer and down caches from the nodes and fabric.
    /// Called once at `run_until` entry: control operations between
    /// runs (install, inject, crash, direct `node_mut` access) can
    /// change any node's schedule or liveness.
    fn refresh_caches(&mut self) {
        for (i, sn) in self.nodes.iter().enumerate() {
            self.timers[i] = sn.node.next_timer();
            self.down[i] = self.net.is_down(&sn.addr);
        }
    }

    /// Mark a node as having runnable work this instant.
    fn mark(&mut self, i: usize) {
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.touched.push(i);
        }
    }

    /// Earliest pending local event: a live node's timer or a queued
    /// delivery (including deliveries addressed to down nodes, which
    /// still consume an instant to be dropped — exactly like the
    /// sequential loop).
    fn next_event(&self) -> Option<Time> {
        let mut next = self.net.next_delivery();
        for (i, timer) in self.timers.iter().enumerate() {
            if self.down[i] {
                continue;
            }
            if let Some(t) = *timer {
                next = Some(next.map_or(t, |x| x.min(t)));
            }
        }
        next
    }

    /// Execute one conservative window `[start, end)`.
    fn run_window(&mut self, cmd: WindowCmd) -> WindowReply {
        for se in cmd.incoming {
            self.net.accept(se);
        }
        let mut last = None;
        if cmd.gc {
            // GC windows are single-instant and every shard runs the
            // sweep, events or not.
            let e = self.run_instant(cmd.start, cmd.epoch_base, true);
            last = Some((cmd.start, e));
            self.stats.events += 1;
        } else {
            while let Some(u_raw) = self.next_event() {
                if u_raw >= cmd.end {
                    break;
                }
                // A timer can predate the window when a node revived
                // with a stale schedule; it fires "now", like the
                // sequential loop's clamp to the clock.
                let u = u_raw.max(cmd.start);
                let base = if u == cmd.start { cmd.epoch_base } else { 0 };
                let e = self.run_instant(u, base, false);
                last = Some((u, e));
                self.stats.events += 1;
            }
        }
        self.stats.barrier_waits += 1;
        let outbound = self.net.take_outbound();
        self.stats.mailbox_envelopes += outbound.len() as u64;
        WindowReply {
            shard: self.id,
            outbound,
            next_event: self.next_event(),
            last,
        }
    }

    /// Replay one event instant exactly as `SimHarness::run_until` does:
    /// fire due timers, sweep the tracer on GC instants, then settle in
    /// waves. Returns the next free stamp epoch at `u`.
    ///
    /// Unlike the sequential loop — which pumps *every* live node in
    /// every wave — only nodes that could have runnable work are pumped:
    /// nodes whose timers fired this instant, nodes handed a delivery in
    /// the previous wave, and every node on a GC instant. For
    /// work-conserving pumps (the bit-identical contract; see the module
    /// docs) a pump of any other node is a no-op, so skipping it changes
    /// nothing observable and removes the dominant O(shard size ×
    /// waves) cost of dense populations.
    fn run_instant(&mut self, u: Time, base: u32, gc: bool) -> u32 {
        for i in 0..self.nodes.len() {
            if self.down[i] {
                continue;
            }
            if self.timers[i].is_some_and(|t| t <= u) {
                self.nodes[i].node.fire_timers(u);
                self.mark(i);
            }
        }
        if gc {
            // The sequential sweep does not skip down nodes; it can also
            // free watched state, so every node gets pumped after it.
            for i in 0..self.nodes.len() {
                self.nodes[i].node.trace_gc(u);
                self.mark(i);
            }
        }
        let mut epoch = base;
        loop {
            self.net.set_stamp(u, epoch);
            let mut progress = false;
            for i in 0..self.nodes.len() {
                if !self.dirty[i] {
                    continue;
                }
                self.dirty[i] = false;
                if self.down[i] {
                    continue;
                }
                let sn = &mut self.nodes[i];
                while let Some(env) = sn.inbox.pop_front() {
                    sn.node.deliver(env, u);
                }
                for env in sn.node.pump(u) {
                    self.net.send(env, u);
                    progress = true;
                }
            }
            for env in self.net.pop_due(u) {
                let ni = self.local_idx[&env.dst];
                self.nodes[ni].inbox.push_back(env);
                self.mark(ni);
                progress = true;
            }
            epoch += 1;
            if !progress {
                break;
            }
        }
        // Touched nodes fired, pumped, or were delivered to — their
        // schedules may have changed; the rest kept their cached timer.
        while let Some(i) = self.touched.pop() {
            self.timers[i] = self.nodes[i].node.next_timer();
        }
        // Restore the all-false invariant for the next instant (the
        // last wave clears every mark it visits, so this is a cheap
        // safety net, not a correctness dependency).
        self.dirty.fill(false);
        epoch
    }
}

/// Coordinator state threaded through the window loop (split out of the
/// harness so the shards can be mutably lent to worker threads).
struct Coord<'a> {
    index: &'a HashMap<Addr, (usize, usize)>,
    clock: &'a mut Time,
    next_gc: &'a mut Time,
    stamp_time: &'a mut Time,
    stamp_epoch: &'a mut u32,
    gc_period: TimeDelta,
    lookahead: TimeDelta,
}

/// A sharded, conservatively windowed population — the parallel
/// counterpart of [`crate::SimHarness`], bit-identical to it at every
/// shard count.
pub struct ParallelHarness {
    shards: Vec<Shard>,
    index: HashMap<Addr, (usize, usize)>,
    order: Vec<Addr>,
    clock: Time,
    gc_period: TimeDelta,
    next_gc: Time,
    lookahead: TimeDelta,
    base_node_config: NodeConfig,
    seed: u64,
    /// Next free stamp epoch at `stamp_time` (mirrors what the
    /// sequential harness's per-wave `begin_epoch` calls consume).
    stamp_time: Time,
    stamp_epoch: u32,
    /// Per-node config as registered, replayed on
    /// [`ParallelHarness::restart`].
    configs: HashMap<Addr, NodeConfig>,
    /// Programs installed through the harness, replayed on restart.
    programs: HashMap<Addr, Vec<String>>,
}

impl ParallelHarness {
    /// Create a harness with the given network config, node config
    /// template, seed, and shard count.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` or the network latency is zero — the
    /// base latency is the conservative lookahead, so it must be
    /// positive for windows to exist at all.
    pub fn new(
        net_config: SimConfig,
        node_config: NodeConfig,
        seed: u64,
        shards: usize,
    ) -> ParallelHarness {
        assert!(shards >= 1, "need at least one shard");
        assert!(
            net_config.latency > TimeDelta::ZERO,
            "parallel harness needs a positive latency lookahead"
        );
        let mut nc = node_config;
        nc.seed = seed;
        let lookahead = net_config.latency;
        let shards = (0..shards)
            .map(|id| Shard {
                id,
                nodes: Vec::new(),
                local_idx: HashMap::new(),
                net: SimNetwork::new(SimConfig {
                    seed,
                    ..net_config.clone()
                }),
                stats: ShardStats {
                    shard: id as u64,
                    ..ShardStats::default()
                },
                dirty: Vec::new(),
                touched: Vec::new(),
                timers: Vec::new(),
                down: Vec::new(),
            })
            .collect();
        ParallelHarness {
            shards,
            index: HashMap::new(),
            order: Vec::new(),
            clock: Time::ZERO,
            gc_period: TimeDelta::from_secs(30),
            next_gc: Time::from_secs(30),
            lookahead,
            base_node_config: nc,
            seed,
            stamp_time: Time::ZERO,
            stamp_epoch: 0,
            configs: HashMap::new(),
            programs: HashMap::new(),
        }
    }

    /// A harness with default network (10 ms links) and node settings.
    pub fn with_seed(seed: u64, shards: usize) -> ParallelHarness {
        ParallelHarness::new(SimConfig::default(), NodeConfig::default(), seed, shards)
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// The harness seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Add a node (default config template). Returns its address.
    pub fn add_node(&mut self, name: &str) -> Addr {
        self.add_node_with(name, self.base_node_config.clone())
    }

    /// Add a node with an explicit config. Nodes are assigned to shards
    /// round-robin in insertion order; every shard fabric registers
    /// every address (in the same order, so stamp indices agree).
    pub fn add_node_with(&mut self, name: &str, mut config: NodeConfig) -> Addr {
        let addr = Addr::new(name);
        config.seed = self.seed;
        self.configs.insert(addr.clone(), config.clone());
        let si = self.order.len() % self.shards.len();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.net.register_at(addr.clone(), i == si);
        }
        let shard = &mut self.shards[si];
        let ni = shard.nodes.len();
        shard.local_idx.insert(addr.clone(), ni);
        shard.nodes.push(ShardNode {
            addr: addr.clone(),
            node: Node::new(addr.clone(), config),
            inbox: VecDeque::new(),
        });
        shard.dirty.push(false);
        shard.timers.push(None);
        shard.down.push(false);
        self.index.insert(addr.clone(), (si, ni));
        self.order.push(addr.clone());
        addr
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never added to the harness.
    pub fn node(&self, addr: &Addr) -> &Node {
        let (si, ni) = self.index[addr];
        &self.shards[si].nodes[ni].node
    }

    /// Access a node mutably.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never added to the harness.
    pub fn node_mut(&mut self, addr: &Addr) -> &mut Node {
        let (si, ni) = self.index[addr];
        &mut self.shards[si].nodes[ni].node
    }

    /// All node addresses in insertion order.
    pub fn addrs(&self) -> &[Addr] {
        &self.order
    }

    /// Install a program on one node at the current time.
    pub fn install(&mut self, addr: &Addr, source: &str) -> Result<ProgramId, InstallError> {
        let now = self.clock;
        let pid = self.node_mut(addr).install(source, now)?;
        self.programs
            .entry(addr.clone())
            .or_default()
            .push(source.to_string());
        self.control_settle();
        Ok(pid)
    }

    /// Install the same program on every node, then settle once.
    pub fn install_all(&mut self, source: &str) -> Result<Vec<ProgramId>, InstallError> {
        let now = self.clock;
        let mut out = Vec::new();
        for i in 0..self.order.len() {
            let addr = self.order[i].clone();
            out.push(self.node_mut(&addr).install(source, now)?);
            self.programs
                .entry(addr.clone())
                .or_default()
                .push(source.to_string());
        }
        self.control_settle();
        Ok(out)
    }

    /// Inject a tuple at a node and settle.
    pub fn inject(&mut self, addr: &Addr, tuple: Tuple) {
        self.node_mut(addr).inject(tuple);
        self.control_settle();
    }

    /// Crash a node: every shard fabric drops its traffic and the node
    /// stops executing until revived.
    pub fn crash(&mut self, addr: &Addr) {
        for shard in &mut self.shards {
            shard.net.set_down(addr, true);
        }
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, addr: &Addr) {
        for shard in &mut self.shards {
            shard.net.set_down(addr, false);
        }
    }

    /// Whether the node is crashed.
    pub fn is_down(&self, addr: &Addr) -> bool {
        self.shards[0].net.is_down(addr)
    }

    /// Restart a node from scratch: all soft state and queued inbox
    /// mail is lost, the sealed archive is recovered from the node's
    /// durable store (when durability is configured), harness-installed
    /// programs are reinstalled at the current virtual time, and every
    /// shard fabric marks the node reachable again. Mirrors
    /// [`crate::SimHarness::restart`] wave for wave, so recovered state
    /// is bit-identical across shard counts.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never added to the harness.
    pub fn restart(&mut self, addr: &Addr) -> Result<(), InstallError> {
        let (si, ni) = self.index[addr];
        let config = self
            .configs
            .get(addr)
            .cloned()
            .unwrap_or_else(|| self.base_node_config.clone());
        let slot = &mut self.shards[si].nodes[ni];
        // Swap in a throwaway placeholder so the dying node can be
        // consumed for its durable store — the only thing that
        // survives the crash.
        let old = std::mem::replace(
            &mut slot.node,
            Node::new(addr.clone(), NodeConfig::default()),
        );
        let store = old.into_durable();
        slot.node = Node::with_recovered(addr.clone(), config, store);
        slot.inbox.clear();
        self.shards[si].timers[ni] = None;
        let now = self.clock;
        let mut failed = None;
        for source in self.programs.get(addr).cloned().unwrap_or_default() {
            if let Err(e) = self.shards[si].nodes[ni].node.install(&source, now) {
                failed = Some(e);
                break;
            }
        }
        for shard in &mut self.shards {
            shard.net.set_down(addr, false);
        }
        self.control_settle();
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Sever or restore a directed link on every shard fabric.
    pub fn set_cut(&mut self, src: &Addr, dst: &Addr, cut: bool) {
        for shard in &mut self.shards {
            shard.net.set_cut(src, dst, cut);
        }
    }

    /// Change the loss rate on the fly, on every shard fabric.
    pub fn set_loss_rate(&mut self, rate: f64) {
        for shard in &mut self.shards {
            shard.net.set_loss_rate(rate);
        }
    }

    /// Population-wide network counters, summed across shard fabrics.
    pub fn net_stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for shard in &self.shards {
            out.merge(shard.net.stats());
        }
        out
    }

    /// Per-shard runtime counters (events, barrier waits, mailbox
    /// envelopes), in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Hand the current stamp epoch out and advance past it, resetting
    /// at a fresh instant — the coordinator-side mirror of
    /// `SimNetwork::begin_epoch`.
    fn alloc_epoch(&mut self, t: Time) -> u32 {
        if self.stamp_time != t {
            self.stamp_time = t;
            self.stamp_epoch = 0;
        }
        let e = self.stamp_epoch;
        self.stamp_epoch += 1;
        e
    }

    /// Mirror of `SimHarness::settle` for control operations (install,
    /// inject): pump every live node in insertion order, one stamp epoch
    /// per wave, routing cross-shard mail directly, until quiescent.
    /// Runs on the calling thread — control ops happen between runs,
    /// when the coordinator owns all shards.
    fn control_settle(&mut self) {
        let t = self.clock;
        loop {
            let e = self.alloc_epoch(t);
            for shard in &mut self.shards {
                shard.net.set_stamp(t, e);
            }
            let mut progress = false;
            for i in 0..self.order.len() {
                let addr = self.order[i].clone();
                let (si, ni) = self.index[&addr];
                let shard = &mut self.shards[si];
                if shard.net.is_down(&addr) {
                    continue;
                }
                let sn = &mut shard.nodes[ni];
                while let Some(env) = sn.inbox.pop_front() {
                    sn.node.deliver(env, t);
                }
                for env in sn.node.pump(t) {
                    shard.net.send(env, t);
                    progress = true;
                }
            }
            self.route_outbound();
            for shard in &mut self.shards {
                for env in shard.net.pop_due(t) {
                    let ni = shard.local_idx[&env.dst];
                    shard.nodes[ni].inbox.push_back(env);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Move every shard's outbound mailbox into the owning fabric's
    /// delivery heap (coordinator-side routing, between windows).
    fn route_outbound(&mut self) {
        let mut moved: Vec<StampedEnvelope> = Vec::new();
        for shard in &mut self.shards {
            let out = shard.net.take_outbound();
            shard.stats.mailbox_envelopes += out.len() as u64;
            moved.extend(out);
        }
        for se in moved {
            let (ds, _) = self.index[&se.env.dst];
            self.shards[ds].net.accept(se);
        }
    }

    /// Copy each shard's counters into its member nodes so `sysStat`
    /// carries `shard.*` rows.
    fn publish_shard_stats(&mut self) {
        for shard in &mut self.shards {
            let snap = shard.stats;
            for sn in &mut shard.nodes {
                sn.node.set_shard_stats(snap);
            }
        }
    }

    /// Advance virtual time to `deadline`, firing timers and deliveries
    /// in order — windowed, sharded, and bit-identical to
    /// `SimHarness::run_until` at the same seed.
    pub fn run_until(&mut self, deadline: Time) {
        // The sequential loop settles on entry (work left behind by
        // control ops — e.g. a tuple injected into a then-down node that
        // has since revived — dispatches *before* the first event) and
        // again at the deadline. Mirror both.
        self.control_settle();
        if self.order.is_empty() {
            self.clock = deadline;
            return;
        }
        for shard in &mut self.shards {
            shard.refresh_caches();
        }
        let initial: Vec<Option<Time>> = self.shards.iter().map(Shard::next_event).collect();
        let gc_period = self.gc_period;
        let lookahead = self.lookahead;
        let ParallelHarness {
            shards,
            index,
            clock,
            next_gc,
            stamp_time,
            stamp_epoch,
            ..
        } = self;
        let coord = Coord {
            index,
            clock,
            next_gc,
            stamp_time,
            stamp_epoch,
            gc_period,
            lookahead,
        };
        // With one shard — or one hardware thread, where workers can
        // only add channel round-trips — run windows inline. Reply
        // handling is order-insensitive, so both paths merge identically.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let leftover = if shards.len() == 1 || cores == 1 {
            drive(coord, deadline, initial, |jobs| {
                jobs.into_iter()
                    .map(|(si, cmd)| shards[si].run_window(cmd))
                    .collect()
            })
        } else {
            run_threaded(shards, coord, deadline, initial)
        };
        // Envelopes still in the coordinator's hands (due beyond the
        // deadline) go back into the owning fabric for the next run.
        for (s, list) in leftover.into_iter().enumerate() {
            for se in list {
                self.shards[s].net.accept(se);
            }
        }
        self.control_settle();
        self.publish_shard_stats();
    }

    /// Advance virtual time by `delta`.
    pub fn run_for(&mut self, delta: TimeDelta) {
        let deadline = self.clock + delta;
        self.run_until(deadline);
    }
}

/// Spawn one worker per shard (scoped, std mpsc) and run the window
/// loop against them. Returns undelivered cross-shard envelopes.
#[expect(
    clippy::expect_used,
    reason = "a dead or wedged shard worker is unrecoverable; fail loudly instead of hanging the barrier"
)]
fn run_threaded(
    shards: &mut [Shard],
    coord: Coord<'_>,
    deadline: Time,
    initial: Vec<Option<Time>>,
) -> Vec<Vec<StampedEnvelope>> {
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<WindowReply>();
        let mut cmd_txs = Vec::new();
        for shard in shards.iter_mut() {
            let (tx, rx) = mpsc::channel::<WindowCmd>();
            cmd_txs.push(tx);
            let rtx = reply_tx.clone();
            scope.spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    if rtx.send(shard.run_window(cmd)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(reply_tx);
        drive(coord, deadline, initial, move |jobs| {
            let k = jobs.len();
            for (si, cmd) in jobs {
                cmd_txs[si].send(cmd).expect("shard worker hung up mid-run");
            }
            (0..k)
                .map(|_| {
                    reply_rx
                        .recv_timeout(Duration::from_secs(120))
                        .expect("shard worker stalled or died")
                })
                .collect()
        })
    })
}

/// The coordinator's window loop: pick the next global event time, open
/// a conservative window (or a single-instant GC round), dispatch it to
/// the shards that have work, then merge mailboxes at the barrier.
/// Returns per-shard envelopes still undelivered at the deadline.
fn drive(
    coord: Coord<'_>,
    deadline: Time,
    mut next_event: Vec<Option<Time>>,
    mut exec: impl FnMut(Vec<(usize, WindowCmd)>) -> Vec<WindowReply>,
) -> Vec<Vec<StampedEnvelope>> {
    let n = next_event.len();
    let mut pending: Vec<Vec<StampedEnvelope>> = vec![Vec::new(); n];
    let micro = TimeDelta::from_micros(1);
    loop {
        // Earliest event anywhere: shard-local timers/deliveries, plus
        // cross-shard envelopes still in the coordinator's hands.
        let mut t_raw: Option<Time> = None;
        for s in 0..n {
            let mut m = next_event[s];
            if let Some(p) = pending[s].iter().map(|se| se.deliver_at).min() {
                m = Some(m.map_or(p, |x| x.min(p)));
            }
            if let Some(m) = m {
                t_raw = Some(t_raw.map_or(m, |x| x.min(m)));
            }
        }
        let t = match t_raw {
            Some(t) if t <= deadline => t.max(*coord.clock),
            _ => break,
        };
        // The tracer sweep is population-global: the first event instant
        // at or past the GC deadline runs as its own single-instant
        // window with every shard participating.
        let (end, gc) = if t >= *coord.next_gc {
            (t + micro, true)
        } else {
            let mut e = t + coord.lookahead;
            if *coord.next_gc < e {
                e = *coord.next_gc;
            }
            if deadline + micro < e {
                e = deadline + micro;
            }
            (e, false)
        };
        let epoch_base = if t == *coord.stamp_time {
            *coord.stamp_epoch
        } else {
            0
        };
        let mut jobs = Vec::new();
        for s in 0..n {
            let has_event = next_event[s].is_some_and(|x| x < end)
                || pending[s].iter().any(|se| se.deliver_at < end);
            if gc || has_event {
                jobs.push((
                    s,
                    WindowCmd {
                        start: t,
                        end,
                        gc,
                        epoch_base,
                        incoming: std::mem::take(&mut pending[s]),
                    },
                ));
            }
        }
        let mut last: Option<(Time, u32)> = None;
        for r in exec(jobs) {
            next_event[r.shard] = r.next_event;
            for se in r.outbound {
                pending[coord.index[&se.env.dst].0].push(se);
            }
            if let Some((u, e)) = r.last {
                last = Some(match last {
                    Some((lu, le)) if lu > u || (lu == u && le >= e) => (lu, le),
                    _ => (u, e),
                });
            }
        }
        if let Some((u, e)) = last {
            *coord.stamp_time = u;
            *coord.stamp_epoch = e;
        }
        if gc {
            *coord.next_gc = t + coord.gc_period;
        }
    }
    *coord.clock = deadline;
    pending
}

impl Population for ParallelHarness {
    fn now(&self) -> Time {
        ParallelHarness::now(self)
    }
    fn seed(&self) -> u64 {
        ParallelHarness::seed(self)
    }
    fn add_node(&mut self, name: &str) -> Addr {
        ParallelHarness::add_node(self, name)
    }
    fn add_node_with(&mut self, name: &str, config: NodeConfig) -> Addr {
        ParallelHarness::add_node_with(self, name, config)
    }
    fn addrs(&self) -> &[Addr] {
        ParallelHarness::addrs(self)
    }
    fn node(&self, addr: &Addr) -> &Node {
        ParallelHarness::node(self, addr)
    }
    fn node_mut(&mut self, addr: &Addr) -> &mut Node {
        ParallelHarness::node_mut(self, addr)
    }
    fn install(&mut self, addr: &Addr, source: &str) -> Result<ProgramId, InstallError> {
        ParallelHarness::install(self, addr, source)
    }
    fn install_all(&mut self, source: &str) -> Result<Vec<ProgramId>, InstallError> {
        ParallelHarness::install_all(self, source)
    }
    fn inject(&mut self, addr: &Addr, tuple: Tuple) {
        ParallelHarness::inject(self, addr, tuple)
    }
    fn crash(&mut self, addr: &Addr) {
        ParallelHarness::crash(self, addr)
    }
    fn revive(&mut self, addr: &Addr) {
        ParallelHarness::revive(self, addr)
    }
    fn is_down(&self, addr: &Addr) -> bool {
        ParallelHarness::is_down(self, addr)
    }
    fn restart(&mut self, addr: &Addr) -> Result<(), InstallError> {
        ParallelHarness::restart(self, addr)
    }
    fn set_loss_rate(&mut self, rate: f64) {
        ParallelHarness::set_loss_rate(self, rate)
    }
    fn run_until(&mut self, deadline: Time) {
        ParallelHarness::run_until(self, deadline)
    }
    fn net_stats(&self) -> NetStats {
        ParallelHarness::net_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimHarness;
    use p2_types::Value;

    /// The sim.rs ping-pong, but with the two nodes on different shards.
    #[test]
    fn cross_shard_ping_pong() {
        let mut sim = ParallelHarness::with_seed(1, 2);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.install(&a, r#"fwd pong@"b"(X) :- ping@N(X)."#).unwrap();
        sim.install(&b, "done got@N(X) :- pong@N(X).").unwrap();
        sim.node_mut(&b).watch("got");
        sim.inject(&a, Tuple::new("ping", [Value::addr("a"), Value::Int(7)]));
        sim.run_for(TimeDelta::from_millis(50));
        let got = sim.node_mut(&b).take_watched("got");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.get(1), Some(&Value::Int(7)));
        assert_eq!(got[0].0, Time::from_millis(10));
    }

    /// A gossip pair must end with the same table contents under the
    /// sequential harness and under every shard count.
    #[test]
    fn matches_sequential_gossip() {
        fn run<H: Population>(sim: &mut H) -> Vec<String> {
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            sim.install_all(
                "materialize(seen, infinity, infinity, keys(1, 2)).
                 g gossip@N(E) :- periodic@N(E, 3).
                 s seen@N(E) :- gossip@N(E).",
            )
            .unwrap();
            sim.run_for(TimeDelta::from_secs(30));
            let now = sim.now();
            let mut rows = sim.node_mut(&a).table_scan("seen", now);
            rows.extend(sim.node_mut(&b).table_scan("seen", now));
            rows.iter().map(|t| t.to_string()).collect()
        }

        let want = run(&mut SimHarness::with_seed(42));
        for shards in [1, 2, 4] {
            let got = run(&mut ParallelHarness::with_seed(42, shards));
            assert_eq!(got, want, "diverged at {shards} shards");
        }
    }

    /// Crash/revive across shards replays like the sequential harness.
    #[test]
    fn crash_and_revive_matches_sequential() {
        fn run<H: Population>(sim: &mut H) -> Vec<String> {
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            sim.install(&a, r#"f out@"b"(X) :- go@N(X)."#).unwrap();
            sim.install(&b, "c seen@N(X) :- out@N(X).").unwrap();
            sim.node_mut(&b).watch("seen");
            sim.crash(&b);
            sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(1)]));
            sim.run_for(TimeDelta::from_millis(100));
            sim.revive(&b);
            sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(2)]));
            sim.run_for(TimeDelta::from_millis(100));
            sim.node_mut(&b)
                .take_watched("seen")
                .iter()
                .map(|(t, x)| format!("{t:?} {x}"))
                .collect()
        }
        let want = run(&mut SimHarness::with_seed(9));
        for shards in [1, 2, 3] {
            let got = run(&mut ParallelHarness::with_seed(9, shards));
            assert_eq!(got, want, "diverged at {shards} shards");
        }
    }

    /// Shard counters surface through `sysStat` after a run.
    #[test]
    fn shard_stats_reach_introspection() {
        let mut sim = ParallelHarness::with_seed(5, 2);
        let a = sim.add_node("a");
        let _b = sim.add_node("b");
        sim.install(&a, r#"g probe@"b"(E) :- periodic@N(E, 2)."#)
            .unwrap();
        sim.run_for(TimeDelta::from_secs(10));
        let now = sim.now();
        let node = sim.node_mut(&a);
        node.refresh_introspection(now);
        let rows = node.table_scan(crate::introspect::SYS_STAT, now);
        let keys: Vec<String> = rows
            .iter()
            .filter_map(|t| t.get(1).map(|v| format!("{v}")))
            .collect();
        for want in [
            "shard.id",
            "shard.events",
            "shard.barrier_waits",
            "shard.mailbox_envelopes",
        ] {
            assert!(
                keys.iter().any(|k| k.contains(want)),
                "sysStat missing {want}: {keys:?}"
            );
        }
        // And the population-wide message counters survive the merge.
        assert_eq!(sim.net_stats().sent_by(&a), 5);
    }
}
