// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-core — the node runtime and simulation harness
//!
//! Everything between the front end and the wire: a [`node::Node`] owns a
//! table catalog, the instantiated rule strands, the periodic timers, an
//! optional execution tracer, and the routing logic of Figure 1's network
//! preamble/postamble. Programs are installed **on-line**, at any point
//! in a node's life — the paper's "deployed piecemeal" usage model — and
//! can be removed again by handle.
//!
//! [`sim::SimHarness`] drives a population of nodes over the
//! deterministic simulated network with a virtual clock (the DESIGN.md
//! §2.4 substitution for the paper's 21-process testbed), and doubles as
//! the measurement rig: per-node busy time, live tuples, memory estimate,
//! and messages sent — the exact series of Figures 4–7.

pub mod driver;
pub mod harness;
mod installer;
pub mod introspect;
mod lint;
pub mod metrics;
pub mod node;
pub mod parallel;
mod router;
mod scheduler;
pub mod ship;
pub mod sim;

pub use driver::{Driver, SimPort, ThreadedPort, Transport, UdpPort};
pub use harness::Population;
pub use metrics::{NodeMetrics, ShardStats};
pub use node::{
    ArchiveEnroll, ArchiveMode, DurabilityMode, DurableBackend, InstallError, Node, NodeConfig,
    ProgramId,
};
pub use parallel::ParallelHarness;
pub use ship::{ShipConfig, ShipFailure, ShipStats};
pub use sim::SimHarness;
