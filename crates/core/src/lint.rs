//! Runtime lint oracle (DESIGN.md §2.13): measure actual cascade
//! behavior so the flow analyzer's static bounds can be validated
//! against the running system.
//!
//! With [`crate::NodeConfig::lint`] on, every locally queued delta
//! carries a tag `(root, depth)`:
//!
//! * a **root** is minted wherever a cascade enters the node — a
//!   network arrival, an operator [`crate::Node::inject`], a timer
//!   firing a `periodic` strand, or a ship-released staged trigger —
//!   and opens an **episode** keyed by the root's relation, at depth 0;
//! * a strand remembers the tag of the trigger that fired it, and every
//!   tuple it emits is stamped `(root, depth + 1)` and counted into the
//!   root's episode (deletes excluded — a deletion revises, it does not
//!   derive). Remote sends are counted, then re-root on the receiving
//!   node: depth never crosses the network, so an episode is one
//!   node-local slice of a cascade, which the static per-relation bound
//!   dominates.
//!
//! Strand pipelining can interleave two triggers inside one strand; the
//! outside-the-dataflow tag cannot tell their outputs apart. Such
//! **mixed** episodes are detected (a trigger arriving while the strand
//! still holds in-flight work) and excluded from the published maxima —
//! the oracle only asserts over episodes it attributed exactly, so a
//! measurement can never *spuriously* exceed a bound. Depth needs no
//! such care: any stamped depth d witnesses a real d-edge path in the
//! trigger graph whatever episode it lands in, so the per-relation
//! depth maximum folds unconditionally.
//!
//! Episodes retire when the pump goes quiescent (all local work done);
//! per-root-relation maxima accumulate across the node's lifetime and
//! surface as `lint.depth.<rel>` / `lint.episodeOutputs.<rel>` sysStat
//! rows.

use crate::node::Node;
use std::collections::{BTreeMap, HashMap};

/// `(root id, cascade depth)` stamped on a queued delta.
pub(crate) type LintTag = (u32, u32);

/// One cascade episode: everything derived from a single root tuple.
#[derive(Debug)]
struct Episode {
    root_rel: String,
    outputs: u64,
    max_depth: u32,
    /// A trigger joined a strand that still held another trigger's
    /// in-flight work: output attribution is no longer exact.
    mixed: bool,
}

/// Per-node oracle state. Exists iff `NodeConfig::lint` is set.
#[derive(Debug, Default)]
pub(crate) struct LintState {
    next_root: u32,
    episodes: HashMap<u32, Episode>,
    /// Tag of the last trigger each strand fired on (parallel to
    /// `Node::strands`).
    strand_tag: Vec<Option<LintTag>>,
    /// Tag to stamp on tuples being routed right now (set around
    /// deliver/inject loops and strand-output routing).
    route_tag: Option<LintTag>,
    /// root relation → (max cascade depth, max single-episode outputs),
    /// over all retired episodes.
    maxima: BTreeMap<String, (u64, u64)>,
}

impl Node {
    /// Measured maxima per cascade-root relation: `(relation, max
    /// depth, max outputs of one episode)`. Empty unless
    /// [`crate::NodeConfig::lint`] is on. These are what the flow
    /// analyzer's `depth` / `amplification` bounds must dominate.
    pub fn lint_maxima(&self) -> Vec<(String, u64, u64)> {
        self.lint
            .as_ref()
            .map(|l| {
                l.maxima
                    .iter()
                    .map(|(rel, &(d, o))| (rel.clone(), d, o))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Mint a root episode for a cascade entering at `rel`; returns the
    /// depth-0 tag to stamp on the entering tuple.
    pub(crate) fn lint_new_root(&mut self, rel: &str) -> Option<LintTag> {
        let l = self.lint.as_mut()?;
        let id = l.next_root;
        l.next_root = l.next_root.wrapping_add(1);
        l.episodes.insert(
            id,
            Episode {
                root_rel: rel.to_string(),
                outputs: 0,
                max_depth: 0,
                mixed: false,
            },
        );
        Some((id, 0))
    }

    /// Set the tag stamped on subsequently queued tuples.
    pub(crate) fn lint_set_route(&mut self, tag: Option<LintTag>) {
        if let Some(l) = self.lint.as_mut() {
            l.route_tag = tag;
        }
    }

    /// The tag to stamp on a tuple being queued right now.
    pub(crate) fn lint_route_tag(&self) -> Option<LintTag> {
        self.lint.as_ref().and_then(|l| l.route_tag)
    }

    /// A trigger with `tag` is about to fire strand `idx`. Records the
    /// tag for output stamping; if the strand still holds another
    /// trigger's pipeline work, both episodes turn mixed.
    pub(crate) fn lint_on_fire(&mut self, idx: usize, tag: Option<LintTag>, strand_busy: bool) {
        let Some(l) = self.lint.as_mut() else { return };
        if l.strand_tag.len() <= idx {
            l.strand_tag.resize(idx + 1, None);
        }
        if strand_busy {
            for t in [l.strand_tag[idx], tag] {
                if let Some(ep) = t.and_then(|(root, _)| l.episodes.get_mut(&root)) {
                    ep.mixed = true;
                }
            }
        }
        l.strand_tag[idx] = tag;
    }

    /// The output tag for strand `idx`: its trigger's tag, one deeper.
    pub(crate) fn lint_output_tag(&self, idx: usize) -> Option<LintTag> {
        self.lint
            .as_ref()
            .and_then(|l| l.strand_tag.get(idx).copied().flatten())
            .map(|(root, depth)| (root, depth.saturating_add(1)))
    }

    /// Count one derived (non-delete) tuple into its episode.
    pub(crate) fn lint_count_output(&mut self, tag: Option<LintTag>) {
        let Some(l) = self.lint.as_mut() else { return };
        let Some((root, depth)) = tag else { return };
        if let Some(ep) = l.episodes.get_mut(&root) {
            ep.outputs += 1;
            ep.max_depth = ep.max_depth.max(depth);
        }
    }

    /// Pump quiescent: retire every episode into the per-relation
    /// maxima. Depth folds unconditionally (any stamped depth witnesses
    /// a real trigger path); output counts fold only from episodes with
    /// exact attribution.
    pub(crate) fn lint_quiesce(&mut self) {
        let Some(l) = self.lint.as_mut() else { return };
        for (_, ep) in l.episodes.drain() {
            let entry = l.maxima.entry(ep.root_rel).or_insert((0, 0));
            entry.0 = entry.0.max(ep.max_depth as u64);
            if !ep.mixed {
                entry.1 = entry.1.max(ep.outputs);
            }
        }
    }

    /// Budget overflow: queued deltas were dropped and in-flight strand
    /// work abandoned, so open episodes are incomplete — discard them
    /// without folding.
    pub(crate) fn lint_overflow(&mut self) {
        if let Some(l) = self.lint.as_mut() {
            l.episodes.clear();
            for t in &mut l.strand_tag {
                *t = None;
            }
        }
    }

    /// Strand vector rebuilt (uninstall): tags index into it, so reset.
    pub(crate) fn lint_reset_strands(&mut self) {
        if let Some(l) = self.lint.as_mut() {
            l.episodes.clear();
            l.strand_tag.clear();
        }
    }
}
