//! The discrete-event simulation harness.
//!
//! Drives a population of [`Node`]s over a [`SimNetwork`] with a virtual
//! clock: the substitution for the paper's 21-process testbed (DESIGN.md
//! §2.4). The loop is the classic discrete-event scheme —
//!
//! 1. pump every node to quiescence at the current virtual time, routing
//!    produced envelopes into the network,
//! 2. deliver every envelope due at the current time,
//! 3. when nothing is runnable *now*, advance the clock to the earliest
//!    pending event (timer or delivery) and fire it.
//!
//! Fully deterministic for a fixed seed: node iteration order is
//! insertion order, the network is seeded, and all node RNGs derive from
//! the harness seed.

use crate::driver::{Driver, SimPort};
use crate::node::{InstallError, Node, NodeConfig, ProgramId};
use p2_net::{SimConfig, SimNetwork};
use p2_types::{Addr, Time, TimeDelta, Tuple};
use std::collections::HashMap;

/// A simulated population of P2 nodes, each behind a
/// [`Driver`]`<`[`SimPort`]`>` — the same service loop the realtime
/// runtimes use, fed from the virtual network instead of a socket.
pub struct SimHarness {
    nodes: HashMap<Addr, Driver<SimPort>>,
    order: Vec<Addr>,
    net: SimNetwork,
    clock: Time,
    /// Period of the tracer's reference-count GC sweep.
    gc_period: TimeDelta,
    next_gc: Time,
    base_node_config: NodeConfig,
    seed: u64,
    /// Per-node config as registered, replayed on [`SimHarness::restart`].
    configs: HashMap<Addr, NodeConfig>,
    /// Programs installed through the harness, replayed on restart.
    programs: HashMap<Addr, Vec<String>>,
}

impl SimHarness {
    /// Create a harness with the given network config, node config
    /// template, and seed (node RNGs derive from it).
    pub fn new(net_config: SimConfig, node_config: NodeConfig, seed: u64) -> SimHarness {
        let mut nc = node_config;
        nc.seed = seed;
        SimHarness {
            nodes: HashMap::new(),
            order: Vec::new(),
            net: SimNetwork::new(SimConfig { seed, ..net_config }),
            clock: Time::ZERO,
            gc_period: TimeDelta::from_secs(30),
            next_gc: Time::from_secs(30),
            base_node_config: nc,
            seed,
            configs: HashMap::new(),
            programs: HashMap::new(),
        }
    }

    /// A harness with default network (10 ms links) and node settings.
    pub fn with_seed(seed: u64) -> SimHarness {
        SimHarness::new(SimConfig::default(), NodeConfig::default(), seed)
    }

    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// The harness seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Add a node (default config template). Returns its address.
    pub fn add_node(&mut self, name: &str) -> Addr {
        self.add_node_with(name, self.base_node_config.clone())
    }

    /// Add a node with an explicit config (e.g. tracing enabled on the
    /// measured node only, as in §4's setup).
    pub fn add_node_with(&mut self, name: &str, mut config: NodeConfig) -> Addr {
        let addr = Addr::new(name);
        config.seed = self.seed;
        self.configs.insert(addr.clone(), config.clone());
        self.net.register(addr.clone());
        self.nodes.insert(
            addr.clone(),
            Driver::new(Node::new(addr.clone(), config), SimPort::default()),
        );
        self.order.push(addr.clone());
        addr
    }

    /// Access a node.
    pub fn node(&self, addr: &Addr) -> &Node {
        self.nodes[addr].node()
    }

    /// Access a node mutably.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never added to the harness.
    #[expect(clippy::expect_used, reason = "documented panic on unknown address")]
    pub fn node_mut(&mut self, addr: &Addr) -> &mut Node {
        self.nodes.get_mut(addr).expect("unknown node").node_mut()
    }

    /// All node addresses in insertion order.
    pub fn addrs(&self) -> &[Addr] {
        &self.order
    }

    /// The network fabric (fault injection, stats).
    pub fn net_mut(&mut self) -> &mut SimNetwork {
        &mut self.net
    }

    /// The network fabric, read-only.
    pub fn net(&self) -> &SimNetwork {
        &self.net
    }

    /// Install a program on one node at the current time.
    pub fn install(&mut self, addr: &Addr, source: &str) -> Result<ProgramId, InstallError> {
        let now = self.clock;
        let pid = self.node_mut(addr).install(source, now)?;
        self.programs
            .entry(addr.clone())
            .or_default()
            .push(source.to_string());
        self.settle();
        Ok(pid)
    }

    /// Install the same program on every node.
    pub fn install_all(&mut self, source: &str) -> Result<Vec<ProgramId>, InstallError> {
        let addrs = self.order.clone();
        let mut out = Vec::new();
        for a in addrs {
            let now = self.clock;
            out.push(self.node_mut(&a).install(source, now)?);
            self.programs
                .entry(a.clone())
                .or_default()
                .push(source.to_string());
        }
        self.settle();
        Ok(out)
    }

    /// Inject a tuple at a node and settle.
    pub fn inject(&mut self, addr: &Addr, tuple: Tuple) {
        self.node_mut(addr).inject(tuple);
        self.settle();
    }

    /// Crash a node: the network drops its traffic and the node stops
    /// executing until revived.
    pub fn crash(&mut self, addr: &Addr) {
        self.net.set_down(addr, true);
    }

    /// Revive a crashed node.
    pub fn revive(&mut self, addr: &Addr) {
        self.net.set_down(addr, false);
    }

    /// Whether the node is crashed.
    pub fn is_down(&self, addr: &Addr) -> bool {
        self.net.is_down(addr)
    }

    /// Restart a node from scratch: every piece of soft state — tables,
    /// dataflow, pending timers, queued messages — is lost, exactly as
    /// in a process crash. If the node's config enables durability, the
    /// sealed archive is recovered from its durable store; otherwise
    /// the node comes back empty. Programs installed *through the
    /// harness* are reinstalled at the current virtual time, and the
    /// node is marked reachable again.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was never added to the harness.
    #[expect(clippy::expect_used, reason = "documented panic on unknown address")]
    pub fn restart(&mut self, addr: &Addr) -> Result<(), InstallError> {
        let drv = self.nodes.remove(addr).expect("unknown node");
        // Hand the durable store across the "crash": the store is the
        // only thing that survives, everything else is rebuilt.
        let store = drv.into_node().into_durable();
        let config = self
            .configs
            .get(addr)
            .cloned()
            .unwrap_or_else(|| self.base_node_config.clone());
        let mut node = Node::with_recovered(addr.clone(), config, store);
        let now = self.clock;
        let mut failed = None;
        for source in self.programs.get(addr).cloned().unwrap_or_default() {
            if let Err(e) = node.install(&source, now) {
                failed = Some(e);
                break;
            }
        }
        self.nodes
            .insert(addr.clone(), Driver::new(node, SimPort::default()));
        self.net.set_down(addr, false);
        self.settle();
        match failed {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Set the uniform packet-loss rate on the fabric (0.0 ..= 1.0).
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.net.set_loss_rate(rate);
    }

    /// Pump all nodes and exchange due messages until nothing more can
    /// happen at the current virtual time.
    fn settle(&mut self) {
        loop {
            // Each wave is one stamp epoch: sends from later waves of the
            // same instant carry larger stamps, so the network's delivery
            // order reproduces causal order (and thereby matches the
            // sharded harness bit for bit).
            self.net.begin_epoch(self.clock);
            let mut progress = false;
            for i in 0..self.order.len() {
                let addr = self.order[i].clone();
                if self.net.is_down(&addr) {
                    continue;
                }
                let Some(drv) = self.nodes.get_mut(&addr) else {
                    continue; // order and nodes are kept in sync
                };
                drv.service(self.clock);
                for env in drv.transport_mut().drain_outbox() {
                    self.net.send(env, self.clock);
                    progress = true;
                }
            }
            for env in self.net.pop_due(self.clock) {
                if let Some(drv) = self.nodes.get_mut(&env.dst) {
                    drv.transport_mut().enqueue(env);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Advance virtual time to `deadline`, firing timers and deliveries
    /// in order.
    pub fn run_until(&mut self, deadline: Time) {
        self.settle();
        loop {
            // Earliest future event.
            let mut next: Option<Time> = self.net.next_delivery();
            for addr in &self.order {
                if self.net.is_down(addr) {
                    continue;
                }
                if let Some(t) = self.nodes[addr].node().next_timer() {
                    next = Some(match next {
                        Some(n) => n.min(t),
                        None => t,
                    });
                }
            }
            let next = match next {
                Some(t) if t <= deadline => t.max(self.clock),
                _ => {
                    self.clock = deadline;
                    self.settle();
                    return;
                }
            };
            self.clock = next;
            // Fire due timers. Iterate by index — cloning `order` here
            // (and in the GC sweep below) was pure per-event overhead.
            for i in 0..self.order.len() {
                let addr = self.order[i].clone();
                if self.net.is_down(&addr) {
                    continue;
                }
                let Some(drv) = self.nodes.get_mut(&addr) else {
                    continue;
                };
                let node = drv.node_mut();
                if node.next_timer().is_some_and(|t| t <= next) {
                    node.fire_timers(next);
                }
            }
            // Periodic tracer GC.
            if self.clock >= self.next_gc {
                for i in 0..self.order.len() {
                    let addr = self.order[i].clone();
                    let now = self.clock;
                    if let Some(drv) = self.nodes.get_mut(&addr) {
                        drv.node_mut().trace_gc(now);
                    }
                }
                self.next_gc = self.clock + self.gc_period;
            }
            self.settle();
        }
    }

    /// Advance virtual time by `delta`.
    pub fn run_for(&mut self, delta: TimeDelta) {
        let deadline = self.clock + delta;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    #[test]
    fn two_node_ping_pong() {
        let mut sim = SimHarness::with_seed(1);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.install(&a, r#"fwd pong@"b"(X) :- ping@N(X)."#).unwrap();
        sim.install(&b, "done got@N(X) :- pong@N(X).").unwrap();
        sim.node_mut(&b).watch("got");
        sim.inject(&a, Tuple::new("ping", [Value::addr("a"), Value::Int(7)]));
        // Message needs one latency hop.
        sim.run_for(TimeDelta::from_millis(50));
        let got = sim.node_mut(&b).take_watched("got");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.get(1), Some(&Value::Int(7)));
        // The delivery happened at +10ms of virtual time.
        assert_eq!(got[0].0, Time::from_millis(10));
    }

    #[test]
    fn periodic_rules_fire_on_schedule() {
        let mut sim = SimHarness::new(
            SimConfig::default(),
            NodeConfig {
                stagger_timers: false,
                ..Default::default()
            },
            3,
        );
        let a = sim.add_node("a");
        sim.install(&a, "t tick@N(E) :- periodic@N(E, 5).").unwrap();
        sim.node_mut(&a).watch("tick");
        sim.run_for(TimeDelta::from_secs(21));
        let ticks = sim.node_mut(&a).take_watched("tick");
        assert_eq!(ticks.len(), 4, "t=5,10,15,20");
        assert_eq!(ticks[0].0, Time::from_secs(5));
        assert_eq!(ticks[3].0, Time::from_secs(20));
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let mut sim = SimHarness::with_seed(42);
            let a = sim.add_node("a");
            let b = sim.add_node("b");
            sim.install_all(
                "materialize(seen, infinity, infinity, keys(1, 2)).
                 g gossip@N(E) :- periodic@N(E, 3).
                 s seen@N(E) :- gossip@N(E).",
            )
            .unwrap();
            sim.run_for(TimeDelta::from_secs(30));
            let now = sim.now();
            let mut rows = sim.node_mut(&a).table_scan("seen", now);
            rows.extend(sim.node_mut(&b).table_scan("seen", now));
            rows.iter().map(|t| t.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_and_revive() {
        let mut sim = SimHarness::with_seed(9);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.install(&a, r#"f out@"b"(X) :- go@N(X)."#).unwrap();
        sim.install(&b, "c seen@N(X) :- out@N(X).").unwrap();
        sim.node_mut(&b).watch("seen");
        sim.crash(&b);
        sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(1)]));
        sim.run_for(TimeDelta::from_millis(100));
        assert!(sim.node_mut(&b).take_watched("seen").is_empty());
        sim.revive(&b);
        sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(2)]));
        sim.run_for(TimeDelta::from_millis(100));
        let seen = sim.node_mut(&b).take_watched("seen");
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1.get(1), Some(&Value::Int(2)));
    }

    #[test]
    fn link_partition_is_directional_and_heals() {
        let mut sim = SimHarness::with_seed(11);
        let a = sim.add_node("a");
        let b = sim.add_node("b");
        sim.install(&a, r#"f out@"b"(X) :- go@N(X)."#).unwrap();
        sim.install(&b, r#"g back@"a"(X) :- out@N(X)."#).unwrap();
        sim.node_mut(&a).watch("back");
        // Cut a -> b only: the forward leg drops, so nothing echoes.
        sim.net_mut().set_cut(&a, &b, true);
        sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(1)]));
        sim.run_for(TimeDelta::from_millis(100));
        assert!(sim.node_mut(&a).watched("back").is_empty());
        // Heal: round trips flow again.
        let a2 = a.clone();
        sim.net_mut().set_cut(&a2, &b, false);
        sim.inject(&a, Tuple::new("go", [Value::addr("a"), Value::Int(2)]));
        sim.run_for(TimeDelta::from_millis(100));
        let got = sim.node_mut(&a).take_watched("back");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.get(1), Some(&Value::Int(2)));
    }

    #[test]
    fn message_counters_track_sends() {
        let mut sim = SimHarness::new(
            SimConfig::default(),
            NodeConfig {
                stagger_timers: false,
                ..Default::default()
            },
            5,
        );
        let a = sim.add_node("a");
        let _b = sim.add_node("b");
        sim.install(&a, r#"g probe@"b"(E) :- periodic@N(E, 2)."#)
            .unwrap();
        sim.run_for(TimeDelta::from_secs(10));
        assert_eq!(sim.net().stats().sent_by(&a), 5);
    }
}
