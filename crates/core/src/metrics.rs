//! Per-node measurement counters.
//!
//! These back the evaluation's four series (§4): *CPU utilization* is
//! reported as busy wall-clock time divided by elapsed virtual time —
//! the same ratio the paper plots, with the node's dataflow work as the
//! numerator; *memory* / *live tuples* come from the catalog (plus
//! tracer-internal state); *Tx messages* are counted at the network.

use std::time::Duration;

/// Monotonic counters for one node.
#[derive(Debug, Clone, Default)]
pub struct NodeMetrics {
    /// Wall-clock time spent executing this node's dataflow (pump +
    /// timer firing). Numerator of the CPU-utilization metric.
    pub busy: Duration,
    /// Envelopes handed to the network. With outbox coalescing one
    /// envelope can carry a whole same-relation run, so this counts
    /// *frames*; see `tuples_sent` for payload volume.
    pub msgs_sent: u64,
    /// Payload tuples handed to the network (across all envelopes).
    pub tuples_sent: u64,
    /// Envelopes received from the network.
    pub msgs_received: u64,
    /// Tuples dispatched through the demux (events + table deltas).
    pub tuples_dispatched: u64,
    /// Rule-strand firings.
    pub strand_firings: u64,
    /// Deletions executed on behalf of `delete` rules.
    pub deletes: u64,
    /// Tuples discarded because a pump exceeded its dispatch budget
    /// (runaway-rule protection; see `NodeConfig::max_dispatch_per_pump`).
    pub overflow_drops: u64,
    /// In-flight strand work units (queued stage inputs, un-emitted join
    /// matches) abandoned when a pump's budget ran out. Counted apart
    /// from `overflow_drops` so operators can tell queue pressure from
    /// pipeline pressure.
    pub strand_overflow_drops: u64,
    /// Malformed envelopes (decode failures, bad locations) dropped.
    pub malformed_drops: u64,
}

/// Runtime counters for the population shard a node lives on, published
/// into every member node by the parallel harness after each run so the
/// `sysStat` introspection table covers the parallel engine (`shard.*`
/// rows). Absent (and unreported) under the sequential harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Which shard the node is assigned to.
    pub shard: u64,
    /// Event instants the shard has executed.
    pub events: u64,
    /// Conservative windows the shard has participated in (each one a
    /// barrier round-trip with the coordinator).
    pub barrier_waits: u64,
    /// Envelopes the shard has routed through the cross-shard mailbox.
    pub mailbox_envelopes: u64,
}

impl NodeMetrics {
    /// CPU-utilization percentage against an elapsed virtual duration.
    pub fn cpu_percent(&self, elapsed_virtual_secs: f64) -> f64 {
        if elapsed_virtual_secs <= 0.0 {
            return 0.0;
        }
        100.0 * self.busy.as_secs_f64() / elapsed_virtual_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_percent() {
        let m = NodeMetrics {
            busy: Duration::from_millis(250),
            ..Default::default()
        };
        assert!((m.cpu_percent(10.0) - 2.5).abs() < 1e-9);
        assert_eq!(m.cpu_percent(0.0), 0.0);
    }
}
