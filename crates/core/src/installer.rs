//! The node installer: program compile/install/uninstall and trace-table
//! registration ("piecemeal deployment", §1.3).

use crate::node::{ArchiveEnroll, InstallError, Node, ProgramId};
use crate::scheduler::TimerState;
use p2_dataflow::StrandRuntime;
use p2_planner::compile_program_with;
use p2_planner::plan::{Strand, Trigger};
use p2_store::TableSpec;
use p2_types::{Time, TimeDelta};
use std::cmp::Reverse;
use std::collections::HashSet;
use std::sync::Arc;

impl Node {
    pub(crate) fn register_trace_tables(&mut self) {
        for spec in self.tracer.table_specs() {
            let name = spec.name.clone();
            // Idempotent; conflict impossible (we own the specs).
            let _ = self.catalog.register(spec);
            self.maybe_enroll_archive(&name, true);
        }
        if self.config.trace.log_events {
            let _ = self.catalog.register(TableSpec::new(
                p2_trace::EVENT_LOG,
                Some(TimeDelta::from_secs_f64(
                    self.config.trace.event_log_lifetime_secs,
                )),
                Some(self.config.trace.event_log_max_rows),
                vec![0, 1, 2, 3],
            ));
            self.maybe_enroll_archive(p2_trace::EVENT_LOG, true);
        }
    }

    pub(crate) fn register_introspection_tables(&mut self) {
        for spec in crate::introspect::table_specs() {
            let _ = self.catalog.register(spec);
            // Reflection tables never enroll — even under
            // `ArchiveEnroll::All` (see its docs).
        }
    }

    /// Enroll `name` into the archive if this node's policy covers it.
    /// Trace tables are covered by every policy; application tables by
    /// `All` and matching `Named` entries. A no-op with archiving off.
    pub(crate) fn maybe_enroll_archive(&mut self, name: &str, trace_table: bool) {
        let Some(mode) = &self.config.archive else {
            return;
        };
        let wanted = trace_table
            || match &mode.enroll {
                ArchiveEnroll::TraceOnly => false,
                ArchiveEnroll::All => true,
                ArchiveEnroll::Named(names) => names.iter().any(|n| n == name),
            };
        if wanted {
            // The table was just registered; a miss means a Named entry
            // for a table that never materialized — harmless.
            let _ = self.catalog.enroll_archive(name);
        }
    }

    /// Install an OverLog program (source text) on the running node.
    ///
    /// Returns a handle for [`Node::uninstall`]. Predicates are
    /// classified against the tables materialized *at install time*, so
    /// install monitoring programs after the application they observe.
    pub fn install(&mut self, source: &str, now: Time) -> Result<ProgramId, InstallError> {
        let program = p2_overlog::compile(source).map_err(InstallError::Compile)?;
        let known: HashSet<String> = self
            .catalog
            .table_stats()
            .into_iter()
            .map(|(name, _, _)| name)
            .collect();

        // Static analysis against the live catalog: hard errors reject
        // the install; warnings and notes ride along and surface through
        // `sysDiag` (and `Node::analysis_diagnostics`).
        let analysis_ctx = p2_analysis::AnalysisCtx {
            known_tables: known.clone(),
            ..Default::default()
        };
        let analysis = p2_analysis::analyze(&[&program], &analysis_ctx);
        if analysis.has_errors() {
            return Err(InstallError::Analysis(analysis));
        }

        let compiled = compile_program_with(&program, &known, &self.config.plan)
            .map_err(InstallError::Plan)?;

        // Register tables first (strand classification already done).
        for t in &compiled.tables {
            self.catalog
                .register(TableSpec::new(
                    &t.name,
                    t.lifetime_secs.map(TimeDelta::from_secs_f64),
                    t.max_rows,
                    t.key_fields.clone(),
                ))
                .map_err(InstallError::Catalog)?;
            self.maybe_enroll_archive(&t.name, false);
        }

        // Register the secondary indexes the planner's join probes want,
        // so every `scan_eq` on those fields is an index lookup from the
        // strand's first firing. This covers tables the program reads but
        // does not declare (a monitoring query over the base application's
        // tables): joins are only planned against relations materialized
        // here, so the table is already in the catalog. A miss is
        // tolerated anyway — the store's auto-index fallback would pick
        // the field up after a few linear probes.
        for (table, field) in &compiled.index_requests {
            let _ = self.catalog.ensure_index(table, *field);
        }

        let pid = ProgramId(self.next_program);
        self.next_program += 1;

        for d in compiled.diagnostics {
            self.plan_diagnostics.push((pid, d));
        }
        for d in analysis.items {
            self.analysis_diagnostics.push((pid, d));
        }

        // Instantiate runtimes. Strands the optimizer grouped into a
        // shared-prefix family become ONE runtime (instantiated at the
        // first member's position; the prefix runs once per trigger and
        // member tails fan out); everything else is a runtime of its own.
        // A family's members share one trigger, so dispatch/timer
        // registration is per runtime, exactly as for single strands.
        let plans: Vec<Arc<Strand>> = compiled.strands.into_iter().map(Arc::new).collect();
        let mut group_of: Vec<Option<usize>> = vec![None; plans.len()];
        for (g, pg) in compiled.prefix_groups.iter().enumerate() {
            for &m in &pg.members {
                group_of[m] = Some(g);
            }
        }
        for (i, plan) in plans.iter().enumerate() {
            let runtime = match group_of[i] {
                Some(g) => {
                    let pg = &compiled.prefix_groups[g];
                    if pg.members[0] != i {
                        continue; // instantiated with its family leader
                    }
                    let members: Vec<Arc<Strand>> =
                        pg.members.iter().map(|&m| plans[m].clone()).collect();
                    StrandRuntime::family(members, pg.shared_ops)
                }
                None => StrandRuntime::new(plan.clone()),
            };
            let idx = self.strands.len();
            match &runtime.plan().trigger {
                Trigger::Event { name } => {
                    self.event_dispatch
                        .entry(name.clone())
                        .or_default()
                        .push(idx);
                }
                Trigger::TableInsert { name } => {
                    self.table_dispatch
                        .entry(name.clone())
                        .or_default()
                        .push(idx);
                }
                Trigger::Periodic { period_secs } => {
                    let period = TimeDelta::from_secs_f64(*period_secs);
                    let offset = if self.config.stagger_timers {
                        TimeDelta::from_micros(self.rng.below(period.micros().max(1)))
                    } else {
                        period
                    };
                    let tidx = self.timers.len();
                    self.timers.push(TimerState {
                        strand_idx: idx,
                        period,
                        next_fire: now + offset,
                        program: pid,
                    });
                    self.timer_heap.push(Reverse((now + offset, tidx)));
                }
            }
            self.strands.push(runtime);
            self.strand_programs.push(pid);
        }

        // Stratum-aware scheduling hook: order each relation's dispatch
        // list by the planner's stratum annotation so lower strata fire
        // first. The sort is stable — same-stratum strands keep install
        // order — and with the flag off (the default) the lists stay
        // exactly install-ordered, which golden traces pin.
        if self.config.stratified_dispatch {
            for map in [&mut self.event_dispatch, &mut self.table_dispatch] {
                for v in map.values_mut() {
                    v.sort_by_key(|&i| self.strands[i].plan().stratum);
                }
            }
        }

        // Inject facts as ordinary dispatches (they may be remote).
        for fact in compiled.facts {
            self.route_tuple(fact, false, now);
        }
        Ok(pid)
    }

    /// Remove a program's strands and timers. Its tables (and their
    /// contents) remain — soft state expires on its own, and other
    /// programs may read them.
    pub fn uninstall(&mut self, pid: ProgramId) {
        self.plan_diagnostics.retain(|(p, _)| *p != pid);
        self.analysis_diagnostics.retain(|(p, _)| *p != pid);
        // Lint tags index into the strand vector being rebuilt.
        self.lint_reset_strands();
        let keep: Vec<bool> = self.strand_programs.iter().map(|p| *p != pid).collect();
        // Rebuild the strand vector and all dispatch indexes.
        let mut new_strands = Vec::new();
        let mut new_programs = Vec::new();
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.strands.len());
        for (i, strand) in self.strands.drain(..).enumerate() {
            if keep[i] {
                remap.push(Some(new_strands.len()));
                new_strands.push(strand);
                new_programs.push(self.strand_programs[i]);
            } else {
                remap.push(None);
            }
        }
        self.strands = new_strands;
        self.strand_programs = new_programs;
        for map in [&mut self.event_dispatch, &mut self.table_dispatch] {
            for v in map.values_mut() {
                *v = v.iter().filter_map(|&i| remap[i]).collect();
            }
            map.retain(|_, v| !v.is_empty());
        }
        self.timers.retain_mut(|t| {
            if t.program == pid {
                return false;
            }
            #[expect(
                clippy::expect_used,
                reason = "timers only reference strands of installed programs, all remapped"
            )]
            {
                t.strand_idx = remap[t.strand_idx].expect("kept strands remapped");
            }
            true
        });
        // Timer indices shifted: rebuild the heap (uninstall is rare).
        self.timer_heap = self
            .timers
            .iter()
            .enumerate()
            .map(|(i, t)| Reverse((t.next_fire, i)))
            .collect();
        // Strand indices shifted too: rebuild the scheduler's worklist.
        self.active_strands = self
            .strands
            .iter()
            .enumerate()
            .filter(|(_, s)| s.has_work())
            .map(|(i, _)| i)
            .collect();
    }
}
