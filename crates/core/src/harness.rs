//! The harness abstraction: one population, sequential or sharded.
//!
//! Testbed builders (the Chord ring of `p2-chord`, the measurement rigs
//! of `p2-bench`) and generic experiments drive a simulated population
//! through this trait so they run unchanged on [`crate::SimHarness`]
//! (the single-threaded event loop) and [`crate::ParallelHarness`] (the
//! conservative-window sharded engine of DESIGN.md §2.10). The two are
//! bit-identical for the same seed — the trait is how the equivalence
//! suite states that.

use crate::node::{InstallError, Node, NodeConfig, ProgramId};
use crate::SimHarness;
use p2_net::NetStats;
use p2_types::{Addr, Time, TimeDelta, Tuple};

/// A driveable population of simulated P2 nodes over a virtual clock.
pub trait Population {
    /// The current virtual time.
    fn now(&self) -> Time;

    /// The harness seed (node RNGs and ring IDs derive from it).
    fn seed(&self) -> u64;

    /// Add a node using the harness's node-config template.
    fn add_node(&mut self, name: &str) -> Addr;

    /// Add a node with an explicit config.
    fn add_node_with(&mut self, name: &str, config: NodeConfig) -> Addr;

    /// All node addresses in insertion order.
    fn addrs(&self) -> &[Addr];

    /// Access a node.
    fn node(&self, addr: &Addr) -> &Node;

    /// Access a node mutably.
    fn node_mut(&mut self, addr: &Addr) -> &mut Node;

    /// Install a program on one node at the current time and settle.
    fn install(&mut self, addr: &Addr, source: &str) -> Result<ProgramId, InstallError>;

    /// Install the same program on every node, then settle once.
    fn install_all(&mut self, source: &str) -> Result<Vec<ProgramId>, InstallError>;

    /// Inject a tuple at a node and settle.
    fn inject(&mut self, addr: &Addr, tuple: Tuple);

    /// Crash a node: the network drops its traffic and the node stops
    /// executing until revived.
    fn crash(&mut self, addr: &Addr);

    /// Revive a crashed node.
    fn revive(&mut self, addr: &Addr);

    /// Whether the node is crashed.
    fn is_down(&self, addr: &Addr) -> bool;

    /// Restart a node: all soft state is lost (as in a process crash),
    /// archived history is recovered from the node's durable store when
    /// durability is configured, harness-installed programs are
    /// reinstalled at the current virtual time, and the node becomes
    /// reachable again. Bit-identical across harness implementations
    /// for the same seed and fault schedule.
    fn restart(&mut self, addr: &Addr) -> Result<(), InstallError>;

    /// Set the uniform packet-loss rate on the fabric (0.0 ..= 1.0),
    /// applied to every shard fabric when the population is sharded.
    fn set_loss_rate(&mut self, rate: f64);

    /// Advance virtual time to `deadline`, firing timers and deliveries
    /// in order.
    fn run_until(&mut self, deadline: Time);

    /// Advance virtual time by `delta`.
    fn run_for(&mut self, delta: TimeDelta) {
        let deadline = self.now() + delta;
        self.run_until(deadline);
    }

    /// Population-wide network counters (merged across shards when the
    /// fabric is sharded).
    fn net_stats(&self) -> NetStats;
}

impl Population for crate::SimHarness {
    fn now(&self) -> Time {
        SimHarness::now(self)
    }
    fn seed(&self) -> u64 {
        SimHarness::seed(self)
    }
    fn add_node(&mut self, name: &str) -> Addr {
        SimHarness::add_node(self, name)
    }
    fn add_node_with(&mut self, name: &str, config: NodeConfig) -> Addr {
        SimHarness::add_node_with(self, name, config)
    }
    fn addrs(&self) -> &[Addr] {
        SimHarness::addrs(self)
    }
    fn node(&self, addr: &Addr) -> &Node {
        SimHarness::node(self, addr)
    }
    fn node_mut(&mut self, addr: &Addr) -> &mut Node {
        SimHarness::node_mut(self, addr)
    }
    fn install(&mut self, addr: &Addr, source: &str) -> Result<ProgramId, InstallError> {
        SimHarness::install(self, addr, source)
    }
    fn install_all(&mut self, source: &str) -> Result<Vec<ProgramId>, InstallError> {
        SimHarness::install_all(self, source)
    }
    fn inject(&mut self, addr: &Addr, tuple: Tuple) {
        SimHarness::inject(self, addr, tuple)
    }
    fn crash(&mut self, addr: &Addr) {
        SimHarness::crash(self, addr)
    }
    fn revive(&mut self, addr: &Addr) {
        SimHarness::revive(self, addr)
    }
    fn is_down(&self, addr: &Addr) -> bool {
        SimHarness::is_down(self, addr)
    }
    fn restart(&mut self, addr: &Addr) -> Result<(), InstallError> {
        SimHarness::restart(self, addr)
    }
    fn set_loss_rate(&mut self, rate: f64) {
        SimHarness::set_loss_rate(self, rate)
    }
    fn run_until(&mut self, deadline: Time) {
        SimHarness::run_until(self, deadline)
    }
    fn net_stats(&self) -> NetStats {
        self.net().stats().clone()
    }
}
