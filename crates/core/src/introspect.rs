//! Introspection: node state reflected as queryable tables (§2.1).
//!
//! *"Most of the state of a running P2 node (tables, rules, dataflow
//! graph, etc.) is reflected back to the system as tables, themselves
//! queryable in OverLog."* Three reflection tables are maintained:
//!
//! * `sysTable(loc, name, rows, maxRows, lifetimeSecs)` — the catalog;
//! * `sysRule(loc, strandId, source, fired, outputs, evalErrors)` — the
//!   installed rule strands and their execution counters;
//! * `sysStat(loc, key, value)` — scalar runtime statistics, including
//!   per-table store probe counters under `idx.<table>.<counter>` keys
//!   (index vs linear probes, rows scanned/returned, expiry-heap pops,
//!   auto-created indexes) for tables with any probe/expiry activity,
//!   and — on archiving nodes — archive-tier counters under
//!   `archive.<relation>.<counter>` keys (segments held, sealed bytes,
//!   rows spilled, history scans served, retention drops, compactions).
//!
//! Refreshing is explicit ([`crate::node::Node::refresh_introspection`])
//! or driven by a periodic rule the operator installs — reflection has a
//! cost, so it is paid only when someone is looking.

use crate::node::Node;
use p2_store::TableSpec;
use p2_types::{Time, Tuple, Value};

/// Reflection table names.
pub const SYS_TABLE: &str = "sysTable";
/// See module docs.
pub const SYS_RULE: &str = "sysRule";
/// See module docs.
pub const SYS_STAT: &str = "sysStat";
/// `sysDiag(loc, program, seq, severity, code, context, message)` —
/// static-analysis warnings and plan-time diagnostics for the installed
/// programs, so a monitoring query can watch for mis-deployed monitors
/// (a typo'd relation name reads as a healthy, silent system otherwise).
pub const SYS_DIAG: &str = "sysDiag";

/// Table declarations for the reflection tables.
pub fn table_specs() -> Vec<TableSpec> {
    vec![
        TableSpec::new(SYS_TABLE, None, None, vec![0, 1]),
        TableSpec::new(SYS_RULE, None, None, vec![0, 1]),
        TableSpec::new(SYS_STAT, None, None, vec![0, 1]),
        TableSpec::new(SYS_DIAG, None, None, vec![0, 1, 2]),
    ]
}

/// Re-materialize the reflection tables from live node state.
pub fn refresh(node: &mut Node, now: Time) {
    let addr = node.addr().clone();
    let loc = Value::Addr(addr);

    let table_rows: Vec<Tuple> = node
        .catalog_mut()
        .table_stats()
        .into_iter()
        .map(|(name, rows, spec)| {
            Tuple::new(
                SYS_TABLE,
                [
                    loc.clone(),
                    Value::str(&name),
                    Value::Int(rows as i64),
                    Value::Int(spec.max_rows.map(|m| m as i64).unwrap_or(-1)),
                    Value::Float(spec.lifetime.map(|l| l.as_secs_f64()).unwrap_or(-1.0)),
                ],
            )
        })
        .collect();

    let rule_rows: Vec<Tuple> = node
        .strand_stats()
        .into_iter()
        .map(|(id, source, stats)| {
            Tuple::new(
                SYS_RULE,
                [
                    loc.clone(),
                    Value::str(&id),
                    Value::str(&source),
                    Value::Int(stats.fired as i64),
                    Value::Int(stats.outputs as i64),
                    Value::Int(stats.eval_errors as i64),
                ],
            )
        })
        .collect();

    let m = node.metrics().clone();
    let mut stat_rows: Vec<Tuple> = [
        ("msgsSent", m.msgs_sent as i64),
        ("msgsReceived", m.msgs_received as i64),
        ("tuplesDispatched", m.tuples_dispatched as i64),
        ("strandFirings", m.strand_firings as i64),
        ("deletes", m.deletes as i64),
        ("overflowDrops", m.overflow_drops as i64),
        ("strandOverflowDrops", m.strand_overflow_drops as i64),
        ("tuplesSent", m.tuples_sent as i64),
        ("malformedDrops", m.malformed_drops as i64),
        ("liveTuples", node.live_tuples() as i64),
        ("busyMicros", m.busy.as_micros() as i64),
    ]
    .into_iter()
    .map(|(k, v)| Tuple::new(SYS_STAT, [loc.clone(), Value::str(k), Value::Int(v)]))
    .collect();

    // Parallel-engine counters, present only when the node runs under
    // the sharded harness (DESIGN.md §2.10).
    if let Some(s) = node.shard_stats().copied() {
        for (k, v) in [
            ("shard.id", s.shard),
            ("shard.events", s.events),
            ("shard.barrier_waits", s.barrier_waits),
            ("shard.mailbox_envelopes", s.mailbox_envelopes),
        ] {
            stat_rows.push(Tuple::new(
                SYS_STAT,
                [loc.clone(), Value::str(k), Value::Int(v as i64)],
            ));
        }
    }

    // Lint-oracle cascade maxima (DESIGN.md §2.13), one pair of rows per
    // cascade-root relation. Absent entirely unless `NodeConfig::lint`
    // is on — golden traces of un-linted nodes must not change.
    for (rel, depth, outputs) in node.lint_maxima() {
        stat_rows.push(Tuple::new(
            SYS_STAT,
            [
                loc.clone(),
                Value::str(format!("lint.depth.{rel}")),
                Value::Int(depth as i64),
            ],
        ));
        stat_rows.push(Tuple::new(
            SYS_STAT,
            [
                loc.clone(),
                Value::str(format!("lint.episodeOutputs.{rel}")),
                Value::Int(outputs as i64),
            ],
        ));
    }

    // Archive-tier counters, one row per (relation, counter), mirroring
    // the `idx.*` convention. Absent entirely when archiving is off —
    // golden traces of live-only nodes must not change — and relations
    // that never spilled a row have no entries to emit.
    let mut archive_rows: Vec<Tuple> = Vec::new();
    if node.catalog_mut().archive_enabled() {
        for (name, s) in node.catalog_mut().archive_stats() {
            for (counter, v) in [
                ("segments", s.segments),
                ("sealedBytes", s.sealed_bytes),
                ("openRows", s.open_rows),
                ("spilledRows", s.spilled_rows),
                ("scans", s.scans),
                ("scanHits", s.scan_hits),
                ("droppedSegments", s.dropped_segments),
                ("compactions", s.compactions),
                ("prunedSegments", s.pruned_segments),
                ("ageDroppedSegments", s.age_dropped_segments),
            ] {
                archive_rows.push(Tuple::new(
                    SYS_STAT,
                    [
                        loc.clone(),
                        Value::str(format!("archive.{name}.{counter}")),
                        Value::Int(v as i64),
                    ],
                ));
            }
        }
    }

    // Durable-tier counters (DESIGN.md §2.14), present only when a
    // durable store is attached — nodes without durability keep their
    // sysStat byte-identical.
    let mut durable_rows: Vec<Tuple> = Vec::new();
    if let Some(d) = node.catalog_mut().durable_stats() {
        for (k, v) in [
            ("durable.boots", d.boots),
            ("durable.appends", d.appends),
            ("durable.fsyncs", d.fsyncs),
            ("durable.recoveredSegments", d.recovered_segments),
            ("durable.truncatedTailBytes", d.truncated_tail_bytes),
            ("durable.quarantined", d.quarantined),
            ("durable.ioErrors", d.io_errors),
        ] {
            durable_rows.push(Tuple::new(
                SYS_STAT,
                [loc.clone(), Value::str(k), Value::Int(v as i64)],
            ));
        }
    }

    // Segment-shipping counters, present only on nodes where shipping
    // was ever touched (peer enrolled, collector subscribed, or ship
    // traffic received) — everyone else's sysStat is unchanged.
    let mut ship_rows: Vec<Tuple> = Vec::new();
    if node.ship_active() {
        let s = node.ship_stats();
        for (k, v) in [
            ("archive.ship.requestsSent", s.requests_sent),
            ("archive.ship.requestsServed", s.requests_served),
            ("archive.ship.replyChunksSent", s.reply_chunks_sent),
            ("archive.ship.replyChunksReceived", s.reply_chunks_received),
            ("archive.ship.fetchesCompleted", s.fetches_completed),
            ("archive.ship.announceChunksSent", s.announce_chunks_sent),
            (
                "archive.ship.announceChunksReceived",
                s.announce_chunks_received,
            ),
            ("archive.ship.announcesApplied", s.announces_applied),
            ("archive.ship.nacksSent", s.nacks_sent),
            ("archive.ship.nacksReceived", s.nacks_received),
            ("archive.ship.timeouts", s.timeouts),
            ("archive.ship.retries", s.retries),
            ("archive.ship.triggersStaged", s.triggers_staged),
            ("archive.ship.triggersReleased", s.triggers_released),
            ("archive.ship.bytesSent", s.bytes_sent),
            ("archive.ship.bytesReceived", s.bytes_received),
            ("archive.ship.strays", s.strays),
            ("archive.ship.out.deltaSegments", s.delta_segments),
        ] {
            ship_rows.push(Tuple::new(
                SYS_STAT,
                [loc.clone(), Value::str(k), Value::Int(v as i64)],
            ));
        }
        // Imported coverage, one (origin, relation) pair per counter —
        // the collector-side mirror of the origin's archive.* rows.
        for (origin, relation, segs, bytes, age_dropped) in node.catalog_mut().imported_stats() {
            for (counter, v) in [
                ("segments", segs),
                ("bytes", bytes),
                ("ageDroppedSegments", age_dropped),
            ] {
                ship_rows.push(Tuple::new(
                    SYS_STAT,
                    [
                        loc.clone(),
                        Value::str(format!("archive.ship.in.{origin}.{relation}.{counter}")),
                        Value::Int(v as i64),
                    ],
                ));
            }
        }
    }

    // Store probe/expiry counters, one row per (table, counter). Tables
    // with no activity yet are skipped so sysStat stays readable on nodes
    // with large catalogs.
    let mut idx_rows: Vec<Tuple> = Vec::new();
    for (name, s) in node.catalog_mut().index_stats() {
        if s.index_probes + s.linear_probes + s.heap_pops + s.auto_indexes == 0 {
            continue;
        }
        for (counter, v) in [
            ("indexProbes", s.index_probes),
            ("linearProbes", s.linear_probes),
            ("rowsScanned", s.rows_scanned),
            ("rowsReturned", s.rows_returned),
            ("heapPops", s.heap_pops),
            ("autoIndexes", s.auto_indexes),
        ] {
            idx_rows.push(Tuple::new(
                SYS_STAT,
                [
                    loc.clone(),
                    Value::str(format!("idx.{name}.{counter}")),
                    Value::Int(v as i64),
                ],
            ));
        }
    }

    // Diagnostics: analysis findings first, then plan-time warnings,
    // sequence-numbered per program so keys stay stable across refreshes.
    let mut diag_rows: Vec<Tuple> = Vec::new();
    let mut seq: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    for (pid, d) in &node.analysis_diagnostics {
        let n = seq.entry(pid.0).or_insert(0);
        diag_rows.push(Tuple::new(
            SYS_DIAG,
            [
                loc.clone(),
                Value::Int(pid.0 as i64),
                Value::Int(*n),
                Value::str(d.severity.to_string()),
                Value::str(d.code),
                Value::str(d.context.as_deref().unwrap_or("")),
                Value::str(&d.message),
            ],
        ));
        *n += 1;
    }
    for (pid, d) in &node.plan_diagnostics {
        let n = seq.entry(pid.0).or_insert(0);
        diag_rows.push(Tuple::new(
            SYS_DIAG,
            [
                loc.clone(),
                Value::Int(pid.0 as i64),
                Value::Int(*n),
                Value::str("warning"),
                Value::str(d.code),
                Value::str(&d.strand_id),
                Value::str(&d.message),
            ],
        ));
        *n += 1;
    }
    // Remote-history failures: runtime findings, not program findings,
    // so they ride under the reserved program id -1. "No history
    // there" (P2S901) and "peer unreachable" (P2S902) stay queryably
    // distinct instead of collapsing into an empty scan.
    for (ship_seq, f) in node.ship_failures().enumerate() {
        diag_rows.push(Tuple::new(
            SYS_DIAG,
            [
                loc.clone(),
                Value::Int(-1),
                Value::Int(ship_seq as i64),
                Value::str("warning"),
                Value::str(f.code()),
                Value::str(f.context()),
                Value::str(f.message()),
            ],
        ));
    }

    let cat = node.catalog_mut();
    // sysDiag is re-materialized exactly: an uninstalled program's
    // findings must not linger (the other sys tables keep their rows
    // keyed by entities that never disappear).
    if let Some(t) = cat.table_mut(SYS_DIAG) {
        t.clear();
    }
    for row in table_rows
        .into_iter()
        .chain(rule_rows)
        .chain(stat_rows)
        .chain(archive_rows)
        .chain(durable_rows)
        .chain(ship_rows)
        .chain(idx_rows)
        .chain(diag_rows)
    {
        let _ = cat.insert(row, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeConfig;
    use p2_types::Addr;

    #[test]
    fn reflection_tables_populate() {
        let mut n = Node::new(Addr::new("n1"), NodeConfig::default());
        n.install(
            "materialize(link, infinity, 50, keys(1, 2)).
             r1 out@N(X) :- ev@N(X).",
            Time::ZERO,
        )
        .unwrap();
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        n.refresh_introspection(Time::ZERO);

        let tables = n.table_scan(SYS_TABLE, Time::ZERO);
        assert!(tables.iter().any(|t| t.get(1) == Some(&Value::str("link"))));
        // Reflection tables describe themselves too.
        assert!(tables
            .iter()
            .any(|t| t.get(1) == Some(&Value::str(SYS_TABLE))));

        let rules = n.table_scan(SYS_RULE, Time::ZERO);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].get(3), Some(&Value::Int(1)), "fired once");

        let stats = n.table_scan(SYS_STAT, Time::ZERO);
        assert!(stats
            .iter()
            .any(|t| t.get(1) == Some(&Value::str("strandFirings"))
                && t.get(2) == Some(&Value::Int(1))));
    }

    #[test]
    fn index_counters_surface_in_sys_stat() {
        let mut n = Node::new(Addr::new("n1"), NodeConfig::default());
        n.install(
            "materialize(pred, infinity, 64, keys(1, 2)).
             r1 out@N(P) :- ev@N(P), pred@N(P, V).",
            Time::ZERO,
        )
        .unwrap();
        for i in 0..8 {
            n.inject(Tuple::new(
                "pred",
                [Value::addr("n1"), Value::Int(i), Value::Int(i * 10)],
            ));
        }
        n.pump(Time::ZERO);
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(3)]));
        n.pump(Time::ZERO);
        n.refresh_introspection(Time::ZERO);

        let stats = n.table_scan(SYS_STAT, Time::ZERO);
        let stat = |key: &str| {
            stats
                .iter()
                .find(|t| t.get(1) == Some(&Value::str(key)))
                .and_then(|t| match t.get(2) {
                    Some(Value::Int(v)) => Some(*v),
                    _ => None,
                })
        };
        // The join probed pred through its install-time index, touching
        // only the rows it returned — never the other 7.
        assert!(stat("idx.pred.indexProbes").unwrap() >= 1);
        assert_eq!(
            stat("idx.pred.rowsScanned"),
            stat("idx.pred.rowsReturned"),
            "indexed probes must not scan non-matching rows"
        );
        // Idle tables emit no counter rows.
        assert!(stat("idx.sysRule.indexProbes").is_none());
    }

    #[test]
    fn archive_counters_surface_in_sys_stat_only_when_archiving() {
        // Live-only node: no archive.* keys at all (golden traces of
        // pre-archive runs must stay byte-identical).
        let mut plain = Node::new(Addr::new("n1"), NodeConfig::default());
        plain.refresh_introspection(Time::ZERO);
        assert!(!plain
            .table_scan(SYS_STAT, Time::ZERO)
            .iter()
            .any(|t| { matches!(t.get(1), Some(Value::Str(s)) if s.starts_with("archive.")) }));

        // Forensic node: expire a row, refresh, and the relation's
        // archive counters appear.
        let mut n = Node::new(Addr::new("n1"), NodeConfig::forensic());
        n.install("materialize(succ, 2, 8, keys(1, 2)).", Time::ZERO)
            .unwrap();
        n.inject(Tuple::new("succ", [Value::addr("n1"), Value::Int(9)]));
        n.pump(Time::ZERO);
        let later = Time::from_secs(10);
        n.catalog_mut().scan("succ", later); // expiry prologue spills
        n.refresh_introspection(later);
        let stats = n.table_scan(SYS_STAT, later);
        let spilled = stats
            .iter()
            .find(|t| t.get(1) == Some(&Value::str("archive.succ.spilledRows")))
            .and_then(|t| t.get(2).cloned());
        assert_eq!(spilled, Some(Value::Int(1)), "{stats:?}");
    }

    #[test]
    fn analysis_findings_surface_in_sys_diag_and_clear_on_uninstall() {
        let mut n = Node::new(Addr::new("n1"), NodeConfig::default());
        // 'evv' is consumed but nothing produces it: P2W301 at install.
        let pid = n.install("r1 out@N(X) :- evv@N(X).", Time::ZERO).unwrap();
        assert!(n
            .analysis_diagnostics()
            .any(|d| d.code == "P2W301" && d.message.contains("evv")));
        n.refresh_introspection(Time::ZERO);
        let rows = n.table_scan(SYS_DIAG, Time::ZERO);
        assert!(
            rows.iter().any(|t| t.get(4) == Some(&Value::str("P2W301"))
                && t.get(3) == Some(&Value::str("warning"))),
            "{rows:?}"
        );
        n.uninstall(pid);
        assert_eq!(n.analysis_diagnostics().count(), 0);
        n.refresh_introspection(Time::ZERO);
        assert!(n.table_scan(SYS_DIAG, Time::ZERO).is_empty());
    }

    #[test]
    fn plan_diagnostics_share_the_sys_diag_surface() {
        let mut n = Node::new(Addr::new("n1"), NodeConfig::default());
        n.install("d1 out@N(X) :- ev@N(X), 1 == 2.", Time::ZERO)
            .unwrap();
        n.refresh_introspection(Time::ZERO);
        let rows = n.table_scan(SYS_DIAG, Time::ZERO);
        assert!(
            rows.iter().any(|t| t.get(4) == Some(&Value::str("P2W501"))),
            "{rows:?}"
        );
    }

    #[test]
    fn reflection_is_queryable_from_overlog() {
        // The point of the model: a monitoring rule can read sysRule.
        let mut n = Node::new(Addr::new("n1"), NodeConfig::default());
        n.install("r1 out@N(X / 0) :- ev@N(X).", Time::ZERO)
            .unwrap();
        n.install(
            "watch errorRules@N(Id, Errs) :- probe@N(), sysRule@N(Id, Src, F, O, Errs), Errs > 0.",
            Time::ZERO,
        )
        .unwrap();
        n.watch("errorRules");
        // Make r1 fail once (division by zero in its head expression),
        // refresh reflection, then probe.
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
        n.pump(Time::ZERO);
        n.refresh_introspection(Time::ZERO);
        n.inject(Tuple::new("probe", [Value::addr("n1")]));
        n.pump(Time::ZERO);
        let hits = n.watched("errorRules");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1.get(1), Some(&Value::str("r1")));
    }
}
