//! The node router: local loop-back vs network, and the coalescing
//! outbox.
//!
//! Remote outputs are grouped into same-`(dst, relation, delete)`
//! envelopes — but only **consecutive** outputs coalesce (the router
//! only ever appends to the most recent envelope), so the receiver
//! dispatches tuples in exactly the order a one-envelope-per-tuple
//! sender would have produced. A run is cut at
//! `NodeConfig::envelope_flush_threshold` tuples.

use crate::node::Node;
use p2_dataflow::Action;
use p2_net::Envelope;
use p2_types::{Time, Tuple};

impl Node {
    pub(crate) fn route_action(&mut self, action: Action, now: Time) {
        let Action { tuple, delete } = action;
        self.route_tuple(tuple, delete, now);
    }

    /// Route a tuple by its location field: local loop-back or network.
    pub(crate) fn route_tuple(&mut self, tuple: Tuple, delete: bool, now: Time) {
        let dst = match tuple.location() {
            Ok(a) => a.clone(),
            Err(_) => {
                self.metrics.malformed_drops += 1;
                return;
            }
        };
        if dst == self.addr {
            if delete {
                if let Ok(Some(_)) = self.catalog.delete_by_key(&tuple, now) {
                    self.metrics.deletes += 1;
                    self.log_event(tuple.name(), "remove", now);
                }
            } else {
                self.push_pending(tuple, true);
            }
            return;
        }
        let src_tuple_id = if self.config.tracing {
            Some(self.tracer.on_send(&tuple, &dst, now))
        } else {
            None
        };
        self.metrics.tuples_sent += 1;
        if let Some(last) = self.outbox.last_mut() {
            if last.dst == dst
                && last.delete == delete
                && last.relation() == Some(tuple.name())
                && last.len() < self.config.envelope_flush_threshold
            {
                last.push(tuple, src_tuple_id);
                return;
            }
        }
        self.metrics.msgs_sent += 1;
        let mut env = Envelope {
            tuples: Vec::new(),
            src: self.addr.clone(),
            dst,
            src_tuple_ids: Vec::new(),
            delete,
        };
        env.push(tuple, src_tuple_id);
        self.outbox.push(env);
    }

    /// Hand the accumulated envelopes to the caller (end of a pump).
    pub(crate) fn flush_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }
}
