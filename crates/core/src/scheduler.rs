//! The node scheduler: pump loop, dispatch budget, and timer wheel.
//!
//! The pump consumes batched delta runs ([`crate::node::DeltaBatch`])
//! while preserving the paper's §2.1.2 observable execution exactly:
//!
//! * a relation **with** strand subscribers is dispatched one tuple at a
//!   time, interleaved with one pipeline step per active strand — the
//!   same schedule (and thus the same tap order, and the same traced
//!   tuple IDs) the per-tuple engine produced;
//! * a relation **without** subscribers cannot fire a strand or emit a
//!   tap, so its whole run is pushed through the store in a single
//!   [`Catalog::insert_batch`] call, paying the table's
//!   expiry/compaction prologue and name lookup once per run instead of
//!   once per tuple. Trace rows (`ruleExec`/`tupleTable`), the event
//!   log, and introspection churn all ride this wholesale path.
//!
//! The per-pump budget covers *all* work — tuple dispatches and strand
//! steps alike. On exhaustion queued tuples are dropped (counted in
//! `overflow_drops`) and in-flight strand pipelines are abandoned
//! (counted separately in `strand_overflow_drops`).

use crate::node::{Node, NodeCtx};
use p2_dataflow::{NullSink, TapSink};
use p2_net::Envelope;
use p2_types::{Time, TimeDelta, Tuple, Value};
use std::cmp::Reverse;
use std::collections::VecDeque;
use std::time::Instant;

/// A periodic timer installed for a `periodic`-triggered strand.
#[derive(Debug, Clone)]
pub(crate) struct TimerState {
    pub(crate) strand_idx: usize,
    pub(crate) period: TimeDelta,
    pub(crate) next_fire: Time,
    pub(crate) program: crate::node::ProgramId,
}

impl Node {
    /// Earliest pending timer, for the simulation scheduler.
    ///
    /// The heap top is exact: there is exactly one entry per installed
    /// timer (pushed at install, re-pushed on every firing, and the heap
    /// is rebuilt wholesale on uninstall).
    pub fn next_timer(&self) -> Option<Time> {
        let heap = self.timer_heap.peek().map(|Reverse((t, _))| *t);
        // Outstanding fetch deadlines wake the node too: a staged
        // trigger must be released even if the peer never answers.
        match (heap, self.ship.next_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Fire every timer due at or before `now` (synthesizing `periodic`
    /// event tuples), then pump.
    pub fn fire_timers(&mut self, now: Time) {
        let started = Instant::now();
        self.ship_check_timeouts(now);
        while let Some(Reverse((t, i))) = self.timer_heap.peek().copied() {
            if t > now {
                break;
            }
            self.timer_heap.pop();
            let Some(state) = self.timers.get(i) else {
                continue;
            };
            if state.next_fire != t {
                continue; // stale entry from a rebuild
            }
            let (strand_idx, period) = (state.strand_idx, state.period);
            let mut next = t + period;
            while next <= now {
                next += period; // catch up after long gaps
            }
            self.timers[i].next_fire = next;
            self.timer_heap.push(Reverse((next, i)));
            let nonce = self.rng.next_u64();
            let tuple = Tuple::new(
                "periodic",
                [
                    Value::Addr(self.addr.clone()),
                    Value::id(nonce),
                    Value::Float(period.as_secs_f64()),
                ],
            );
            // Each timer firing roots a fresh cascade episode.
            let tag = self.lint_new_root("periodic");
            self.fire_strand(strand_idx, &tuple, true, now, tag);
        }
        self.metrics.busy += started.elapsed();
    }

    /// Process until quiescent at virtual time `now`; returns envelopes
    /// to transmit.
    pub fn pump(&mut self, now: Time) -> Vec<Envelope> {
        let started = Instant::now();
        let mut budget = self.config.max_dispatch_per_pump;
        'pump: loop {
            let mut did_work = false;

            // Staged triggers whose fetches all resolved fire first:
            // they were dispatched (watched, event-logged, counted)
            // before they parked, so only the strand firings remain.
            while let Some((tuple, traced)) = self.ship.released.pop_front() {
                if budget == 0 {
                    self.overflow();
                    break 'pump;
                }
                budget -= 1;
                if let Some(idxs) = self.event_dispatch.get(tuple.name()).cloned() {
                    // A released trigger re-roots: its original episode
                    // retired while the fetch was in flight.
                    let tag = self.lint_new_root(tuple.name());
                    for idx in idxs {
                        self.fire_strand(idx, &tuple, traced, now, tag);
                    }
                }
                did_work = true;
            }

            if !self.pending.is_empty() {
                if budget == 0 {
                    self.overflow();
                    break;
                }
                self.consume_front(&mut budget, now);
                did_work = true;
            }

            // One pipeline step per strand with in-flight work, in
            // ascending strand order (the §2.1.2 round-robin interleave
            // the per-tuple engine used).
            let active: Vec<usize> = self.active_strands.iter().copied().collect();
            for idx in active {
                if !self.strands[idx].has_work() {
                    self.active_strands.remove(&idx);
                    continue;
                }
                if budget == 0 {
                    self.overflow();
                    break 'pump;
                }
                budget -= self.step_strand(idx, budget, now);
                if !self.strands[idx].has_work() {
                    self.active_strands.remove(&idx);
                }
                did_work = true;
            }

            // Flush tracer rows into the catalog; their deltas dispatch
            // untraced.
            if self.config.tracing && self.tracer.pending_len() > 0 {
                for row in self.tracer.drain_rows() {
                    self.push_pending(row, false);
                }
                did_work = true;
            }

            if !did_work {
                break;
            }
        }
        // Quiescent (or overflowed, which already discarded episodes):
        // retire finished cascade episodes into the lint maxima.
        self.lint_quiesce();
        self.metrics.busy += started.elapsed();
        self.flush_outbox()
    }

    /// Consume work from the front delta batch. Subscribed relations go
    /// one tuple at a time (per-tuple interleave preserved); silent
    /// relations go wholesale through `insert_batch` — but only while no
    /// strand holds in-flight pipeline work. A silent dispatch steps no
    /// strand and emits no tap, yet the per-tuple engine ran one strand
    /// step-round after each one; consuming a whole run in a single
    /// round would advance pending consumption relative to those steps
    /// and reorder trace-ID assignment. With every pipeline drained the
    /// step-rounds are no-ops, and the wholesale shortcut is observably
    /// identical.
    fn consume_front(&mut self, budget: &mut u64, now: Time) {
        let Some(front) = self.pending.front() else {
            return; // caller checks non-empty; an empty queue is done
        };
        let subscribed = self.event_dispatch.contains_key(&front.relation)
            || self.table_dispatch.contains_key(&front.relation);
        if subscribed || !self.active_strands.is_empty() || front.tuples.len() == 1 {
            // A run of length one gains nothing from the wholesale
            // branch; sending it through `dispatch` keeps exactly one
            // code path producing single-tuple effects.
            let Some(front) = self.pending.front_mut() else {
                return;
            };
            let Some(tuple) = front.tuples.pop_front() else {
                self.pending.pop_front(); // batches are never empty
                return;
            };
            let tag = front.tags.pop_front().flatten();
            let traced = front.traced;
            if front.tuples.is_empty() {
                self.pending.pop_front();
            }
            *budget -= 1;
            self.dispatch(tuple, traced, now, tag);
            return;
        }

        // No strand can observe this relation, so no tap (and no trace
        // ID assignment) depends on per-tuple timing: the whole run is
        // one store call. Watches and the event log still see every
        // tuple, in order.
        let Some(mut front) = self.pending.pop_front() else {
            return;
        };
        let traced = front.traced;
        let relation = std::mem::take(&mut front.relation);
        let take = (*budget).min(front.tuples.len() as u64) as usize;
        let run: VecDeque<Tuple> = if take == front.tuples.len() {
            front.tags.clear(); // unsubscribed: no strand, no cascade
            std::mem::take(&mut front.tuples)
        } else {
            front.tags.drain(..take.min(front.tags.len()));
            front.tuples.drain(..take).collect()
        };
        if !front.tuples.is_empty() {
            // Budget clamp mid-run: the rest waits (and is dropped by
            // the overflow path on the next iteration).
            front.relation = relation.clone();
            self.pending.push_front(front);
        }
        *budget -= take as u64;
        self.metrics.tuples_dispatched += take as u64;
        // Per-run hoists: the run is same-relation by construction, so
        // the watch log and the event-log decision resolve once.
        if let Some(log) = self.watches.get_mut(&relation) {
            log.reserve(run.len());
            for t in &run {
                log.push((now, t.clone()));
            }
        }
        if traced && self.config.tracing && self.config.trace.log_events {
            for _ in 0..run.len() {
                self.log_event(&relation, "arrive", now);
            }
        }
        if self.catalog.is_materialized(&relation) {
            let _ = self.catalog.insert_batch(&relation, run, now);
        }
    }

    /// Dispatch one tuple through the demux: watches, table insert (and
    /// delta strands) or event strands. `tag` is the tuple's lint-oracle
    /// cascade tag, handed to every strand it fires.
    pub(crate) fn dispatch(
        &mut self,
        tuple: Tuple,
        traced: bool,
        now: Time,
        tag: Option<crate::lint::LintTag>,
    ) {
        self.metrics.tuples_dispatched += 1;
        if let Some(log) = self.watches.get_mut(tuple.name()) {
            log.push((now, tuple.clone()));
        }
        if traced {
            self.log_event(tuple.name(), "arrive", now);
        }
        let name = tuple.name().to_string();
        if self.catalog.is_materialized(&name) {
            match self.catalog.insert(tuple.clone(), now) {
                Ok(p2_store::InsertOutcome::Refreshed) => return, // no delta
                Ok(_) => {}
                Err(_) => {
                    self.metrics.malformed_drops += 1;
                    return;
                }
            }
            if let Some(idxs) = self.table_dispatch.get(&name).cloned() {
                for idx in idxs {
                    self.fire_strand(idx, &tuple, traced, now, tag);
                }
            }
        } else if let Some(idxs) = self.event_dispatch.get(&name).cloned() {
            // Deployment-provider scans fetch before they fire: if any
            // watching strand needs uncovered peer history, the trigger
            // parks behind the requests and fires on release instead.
            if self.ship_stage_event(&idxs, &tuple, traced, now) {
                return;
            }
            for idx in idxs {
                self.fire_strand(idx, &tuple, traced, now, tag);
            }
        }
    }

    /// Step strand `idx`. Normally one unit of work; when this strand is
    /// the *only* source of work (nothing pending, no sibling strand
    /// active) it keeps stepping — stopping at the first step that emits
    /// an action, so produced tuples are dispatched at exactly the point
    /// the one-step-per-iteration schedule would have dispatched them.
    /// Returns the number of steps taken (all budget-covered).
    fn step_strand(&mut self, idx: usize, budget: u64, now: Time) -> u64 {
        let solo = self.pending.is_empty() && self.active_strands.len() == 1;
        let traced = self.config.tracing;
        let mut steps = 0u64;
        loop {
            let mut actions = Vec::new();
            let stepped = {
                let mut ctx = NodeCtx {
                    now,
                    addr: self.addr.clone(),
                    rng: &mut self.rng,
                };
                let mut null = NullSink;
                let sink: &mut dyn TapSink = if traced { &mut self.tracer } else { &mut null };
                self.strands[idx].step(&mut self.catalog, &mut ctx, sink, now, &mut actions)
            };
            if !stepped {
                break;
            }
            steps += 1;
            let emitted = !actions.is_empty();
            self.lint_route_actions(idx, &actions);
            for a in actions {
                self.route_action(a, now);
            }
            self.lint_set_route(None);
            if !solo || emitted || !self.pending.is_empty() || steps >= budget {
                break;
            }
        }
        steps
    }

    /// Budget exhausted: drop all queued deltas and abandon all in-flight
    /// strand work, counting each separately.
    fn overflow(&mut self) {
        let dropped: usize = self.pending.iter().map(|b| b.tuples.len()).sum();
        self.metrics.overflow_drops += dropped as u64;
        self.pending.clear();
        self.lint_overflow();
        let active: Vec<usize> = self.active_strands.iter().copied().collect();
        for idx in active {
            self.metrics.strand_overflow_drops += self.strands[idx].abandon_work();
        }
        self.active_strands.clear();
    }
}
