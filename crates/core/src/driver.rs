//! The transport-agnostic node driver.
//!
//! Every deployment substrate — the discrete-event simulator, OS threads
//! over in-process channels, UDP sockets — used to carry its own copy of
//! the same service loop (drain the transport, pump the node, transmit
//! the outputs, fire timers, sweep the tracer). [`Driver`] is that loop,
//! written once against the tiny [`Transport`] pluggability seam;
//! [`crate::sim::SimHarness`] drives one `Driver` per simulated node, and
//! the realtime runtimes call [`Driver::run_realtime`] on a thread per
//! node.

use crate::node::Node;
use p2_net::{Envelope, ThreadedHub, UdpRecv, UdpTransport};
use p2_types::{Time, TimeDelta};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// A node's view of its network substrate: somewhere to push outgoing
/// envelopes and somewhere to poll incoming ones.
///
/// Implementations must be non-blocking: `try_recv` returns `None` when
/// nothing is pending (including transient/undecodable input — a hostile
/// datagram must surface as "nothing", never wedge the loop).
pub trait Transport {
    /// Transmit one envelope. Best-effort: delivery failure is the
    /// remote's problem (soft state regenerates, §1).
    fn send(&mut self, env: &Envelope);
    /// Poll one incoming envelope, if any.
    fn try_recv(&mut self) -> Option<Envelope>;
}

/// One node bound to one transport, plus the periodic bookkeeping every
/// substrate needs (tracer reference-count GC).
pub struct Driver<T: Transport> {
    node: Node,
    transport: T,
    gc_period: TimeDelta,
    next_gc: Time,
}

impl<T: Transport> Driver<T> {
    /// Bind `node` to `transport`.
    pub fn new(node: Node, transport: T) -> Driver<T> {
        let gc_period = TimeDelta::from_secs(30);
        Driver {
            node,
            transport,
            gc_period,
            next_gc: Time::ZERO + gc_period,
        }
    }

    /// The driven node.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// The driven node, mutably (install programs, watch relations).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    /// The bound transport.
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Unbind, returning the node (end-of-run inspection).
    pub fn into_node(self) -> Node {
        self.node
    }

    /// One service round at time `now`: drain the transport into the
    /// node, pump to quiescence, transmit the outputs. Fires no timers —
    /// the caller owns the clock (the simulator advances it virtually;
    /// [`Driver::tick`] reads it from the wall).
    pub fn service(&mut self, now: Time) {
        while let Some(env) = self.transport.try_recv() {
            self.node.deliver(env, now);
        }
        for env in self.node.pump(now) {
            self.transport.send(&env);
        }
    }

    /// One realtime iteration: fire due timers, service, and run the
    /// tracer GC sweep on its period.
    pub fn tick(&mut self, now: Time) {
        self.node.fire_timers(now);
        self.service(now);
        if now >= self.next_gc {
            self.node.trace_gc(now);
            self.next_gc = now + self.gc_period;
        }
    }

    /// Drive against the wall clock until `stop` is raised, polling every
    /// `poll` interval, then drain what is already in flight. Node time
    /// is micros since entry.
    pub fn run_realtime(&mut self, stop: &AtomicBool, poll: Duration) {
        let epoch = Instant::now();
        let now = |epoch: Instant| Time(epoch.elapsed().as_micros() as u64);
        while !stop.load(Ordering::Relaxed) {
            self.tick(now(epoch));
            std::thread::sleep(poll);
        }
        // Final drain: frames already queued when the flag flipped.
        self.service(now(epoch));
    }
}

/// In-memory port for the discrete-event simulator: the harness fills
/// `inbox` from the simulated network and forwards `outbox` into it.
#[derive(Default)]
pub struct SimPort {
    inbox: VecDeque<Envelope>,
    outbox: Vec<Envelope>,
}

impl SimPort {
    /// Queue an envelope for the node's next service round.
    pub fn enqueue(&mut self, env: Envelope) {
        self.inbox.push_back(env);
    }

    /// Take everything the node transmitted this round.
    pub fn drain_outbox(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.outbox)
    }
}

impl Transport for SimPort {
    fn send(&mut self, env: &Envelope) {
        self.outbox.push(env.clone());
    }
    fn try_recv(&mut self) -> Option<Envelope> {
        self.inbox.pop_front()
    }
}

/// Port over the in-process threaded hub (`p2-net`'s marshaling channel
/// substrate).
pub struct ThreadedPort {
    hub: ThreadedHub,
    mailbox: p2_net::threaded::Mailbox,
}

impl ThreadedPort {
    /// Register `addr` on the hub and bind the resulting mailbox.
    pub fn register(hub: &ThreadedHub, addr: p2_types::Addr) -> ThreadedPort {
        ThreadedPort {
            hub: hub.clone(),
            mailbox: hub.register(addr),
        }
    }
}

impl Transport for ThreadedPort {
    fn send(&mut self, env: &Envelope) {
        self.hub.send(env);
    }
    fn try_recv(&mut self) -> Option<Envelope> {
        // A decode error is a corrupt peer frame: drop it, keep serving.
        self.mailbox.try_recv().ok().flatten()
    }
}

/// Port over a bound UDP socket (the paper's deployment substrate).
pub struct UdpPort {
    transport: UdpTransport,
    /// Undecodable datagrams seen (hostile or corrupt peers).
    pub malformed: u64,
}

impl UdpPort {
    /// Wrap a bound socket.
    pub fn new(transport: UdpTransport) -> UdpPort {
        UdpPort {
            transport,
            malformed: 0,
        }
    }
}

impl Transport for UdpPort {
    fn send(&mut self, env: &Envelope) {
        let _ = self.transport.send(env);
    }
    fn try_recv(&mut self) -> Option<Envelope> {
        loop {
            match self.transport.try_recv() {
                Ok(UdpRecv::Envelope(env)) => return Some(env),
                Ok(UdpRecv::Malformed { .. }) => self.malformed += 1,
                Ok(UdpRecv::Empty) | Err(_) => return None,
            }
        }
    }
}
