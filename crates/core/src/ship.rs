//! Segment shipping: the distributed-history coordinator (DESIGN.md
//! §2.12).
//!
//! A node-local archive answers `past()` about *this* node. Distributed
//! forensics needs the union: one `past@N("rel", T0, T1, ...)` that
//! ranges over the whole deployment's history. The store side already
//! speaks that language — [`p2_store::HistorySource`] resolves a
//! deployment scan against the imported-segment index — and this module
//! is the transport that fills the index, in two modes:
//!
//! * **Pull (fetch-on-demand).** A collector enrolls peers with
//!   [`Node::ship_add_peer`]. When an event trigger is about to fire a
//!   strand whose plan contains a deployment-provider archive scan, the
//!   dispatcher first checks coverage: any `(peer, relation)` pair not
//!   yet imported is requested over the wire and the trigger is
//!   **staged** — parked until every outstanding request resolves
//!   (reply, nack, or timeout), then released and fired exactly as if
//!   it had just arrived. The strand itself therefore never observes a
//!   half-fetched deployment: by the time it runs, the remote history
//!   is local, and execution stays synchronous and deterministic.
//! * **Subscribe (streaming).** An origin enrolls a collector with
//!   [`Node::ship_subscribe`]. At every GC sweep the origin re-exports
//!   any enrolled relation whose store version moved and streams the
//!   snapshot to its collectors as generation-numbered
//!   [`ShipMsg::Announce`] chunks; collectors apply a generation only
//!   when complete and newer than what they hold. A subscribed
//!   collector's coverage is warm before any query arrives.
//!
//! Ship messages ride ordinary envelopes as `sysShip(dst, payload)`
//! tuples and are intercepted in [`Node::deliver`] *before* the tracing
//! and dispatch machinery — shipping is infrastructure, not
//! application traffic, so it never perturbs traces, watches, or the
//! event log. Failures are never silent: every refused, timed-out, or
//! undecodable fetch lands as a typed [`ShipFailure`], queryable as
//! `sysDiag` tuples, so "no history there" and "peer unreachable" are
//! distinguishable answers rather than indistinguishable empty results.

use crate::node::Node;
use p2_net::ship::{chunk_payload, decode_batch, encode_batch, Reassembly};
use p2_net::{Envelope, ShipMsg};
use p2_store::Segment;
use p2_types::{Addr, Time, TimeDelta, Tuple};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Most ship failures retained for `sysDiag` (oldest evicted first).
const MAX_FAILURES: usize = 64;

/// Shipping knobs. The defaults are inert: with no peers enrolled and
/// no collectors subscribed, a node never sends or stages anything and
/// its behavior is byte-identical to the pre-shipping runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipConfig {
    /// Largest reply/announce chunk, bytes (the paper's runtime ships
    /// one marshaled tuple per datagram; chunking keeps a shipped
    /// archive within that discipline instead of one giant frame).
    pub chunk_bytes: usize,
    /// How long a fetch waits for its reply before retrying.
    pub fetch_timeout: TimeDelta,
    /// Resends after the first attempt before the peer is declared
    /// unreachable and the staged trigger released without coverage.
    pub max_retries: u32,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            chunk_bytes: 48 * 1024,
            fetch_timeout: TimeDelta::from_secs(2),
            max_retries: 2,
        }
    }
}

/// Shipping counters, surfaced as `archive.ship.*` rows in `sysStat`
/// (only on nodes where shipping is active — see
/// [`Node::ship_active`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShipStats {
    /// Fetch requests sent (including retries).
    pub requests_sent: u64,
    /// Fetch requests served with a reply.
    pub requests_served: u64,
    /// Reply chunks sent.
    pub reply_chunks_sent: u64,
    /// Reply chunks received.
    pub reply_chunks_received: u64,
    /// Fetches that completed with imported history.
    pub fetches_completed: u64,
    /// Announce chunks sent (subscribe mode).
    pub announce_chunks_sent: u64,
    /// Announce chunks received.
    pub announce_chunks_received: u64,
    /// Complete announce generations applied.
    pub announces_applied: u64,
    /// Nacks sent (request refused: archiving disabled here).
    pub nacks_sent: u64,
    /// Nacks received.
    pub nacks_received: u64,
    /// Fetches abandoned after exhausting retries.
    pub timeouts: u64,
    /// Resends after a timed-out attempt.
    pub retries: u64,
    /// Event triggers staged behind outstanding fetches.
    pub triggers_staged: u64,
    /// Staged triggers released (fetches resolved, strand fired).
    pub triggers_released: u64,
    /// Payload bytes sent (reply + announce chunks).
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Messages dropped as unparseable or uncorrelated.
    pub strays: u64,
    /// Sealed segments shipped in delta announces instead of being
    /// re-shipped with the full history (subscribe-mode savings).
    pub delta_segments: u64,
}

/// A typed remote-history failure — the §3 forensic distinction
/// between "that node has no history" and "that node never answered",
/// kept queryable instead of collapsed into an empty scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipFailure {
    /// The peer answered: it does not archive (or refused).
    NoHistory {
        /// The refusing peer.
        origin: String,
        /// The relation asked about.
        relation: String,
        /// The peer's stated reason.
        reason: String,
    },
    /// The peer never answered within the retry budget.
    PeerUnreachable {
        /// The silent peer.
        origin: String,
        /// The relation asked about.
        relation: String,
    },
    /// The peer answered with bytes that failed validation.
    BadSegment {
        /// The sending peer.
        origin: String,
        /// The relation shipped.
        relation: String,
        /// The typed decode error, rendered.
        detail: String,
    },
}

impl ShipFailure {
    /// Stable diagnostic code (the `sysDiag` code column).
    pub fn code(&self) -> &'static str {
        match self {
            ShipFailure::NoHistory { .. } => "P2S901",
            ShipFailure::PeerUnreachable { .. } => "P2S902",
            ShipFailure::BadSegment { .. } => "P2S903",
        }
    }

    /// `origin/relation` context string (the `sysDiag` context column).
    pub fn context(&self) -> String {
        match self {
            ShipFailure::NoHistory {
                origin, relation, ..
            }
            | ShipFailure::PeerUnreachable { origin, relation }
            | ShipFailure::BadSegment {
                origin, relation, ..
            } => format!("{origin}/{relation}"),
        }
    }

    /// Human-readable message (the `sysDiag` message column).
    pub fn message(&self) -> String {
        match self {
            ShipFailure::NoHistory { reason, .. } => {
                format!("peer holds no shippable history: {reason}")
            }
            ShipFailure::PeerUnreachable { .. } => {
                "peer unreachable: fetch timed out after retries".to_string()
            }
            ShipFailure::BadSegment { detail, .. } => {
                format!("shipped segment failed validation: {detail}")
            }
        }
    }
}

/// An in-flight fetch of one `(peer, relation)` pair.
#[derive(Debug)]
struct PendingFetch {
    peer: Addr,
    relation: String,
    deadline: Time,
    retries: u32,
    reassembly: Reassembly,
}

/// One reply chunk's fields, bundled off [`ShipMsg::Reply`].
#[derive(Debug)]
struct ReplyFrame {
    req_id: u64,
    chunk: u32,
    chunks: u32,
    watermark: u64,
    bytes: Vec<u8>,
}

/// One announce chunk's fields, bundled off [`ShipMsg::Announce`].
#[derive(Debug)]
struct AnnounceFrame {
    gen: u64,
    chunk: u32,
    chunks: u32,
    delta: bool,
    prev_hi: u64,
    watermark: u64,
    oldest_lo: u64,
    bytes: Vec<u8>,
}

/// An event trigger parked until its fetches resolve.
#[derive(Debug)]
struct StagedTrigger {
    tuple: Tuple,
    traced: bool,
    outstanding: BTreeSet<u64>,
}

/// Per-node shipping state. Inert (and cost-free on every hot path)
/// until a peer is enrolled, a collector subscribes, or a ship message
/// arrives.
#[derive(Debug, Default)]
pub(crate) struct ShipState {
    /// Peers whose history this node fetches on demand (pull mode).
    peers: Vec<Addr>,
    /// Collectors this node streams snapshots to (subscribe mode).
    collectors: Vec<Addr>,
    /// `(origin, relation)` pairs with resolved coverage: imported
    /// history, or an authoritative "no history" answer.
    covered: BTreeSet<(String, String)>,
    pending: BTreeMap<u64, PendingFetch>,
    staged: Vec<StagedTrigger>,
    /// Triggers whose fetches all resolved, awaiting re-dispatch (in
    /// staging order).
    pub(crate) released: VecDeque<(Tuple, bool)>,
    next_req: u64,
    /// Subscribe mode: next announce generation. On a durable restart
    /// the boot counter is folded into the high bits (see
    /// `Node::boot`), so post-restart generations outrun every
    /// pre-crash one and collectors never mistake them for stale.
    pub(crate) announce_gen: u64,
    /// Store version last announced per relation (skip no-op streams).
    announced_version: BTreeMap<String, u64>,
    /// Origin side: baseline of the last announce per relation —
    /// `(epoch_hi of the newest sealed segment, fingerprint of the
    /// whole sealed tier)`. The next announce ships a delta only when
    /// this fingerprint still matches a prefix of the current sealed
    /// tier (no compaction, pruning, or age-drop rewrote the
    /// baseline); anything else falls back to a full snapshot.
    announced_baseline: BTreeMap<String, (u64, u64)>,
    /// Newest generation applied per `(origin, relation)`.
    announce_last: BTreeMap<(String, String), u64>,
    /// Collector side: the baseline epoch-hi currently held per
    /// `(origin, relation)` — set by full announces and pull fetches,
    /// advanced by deltas. A delta whose `prev_hi` exceeds this is a
    /// gap (missed announce, or we restarted): fall back to a pull.
    announce_watermark: BTreeMap<(String, String), u64>,
    /// In-progress announce reassembly per `(origin, relation)`.
    announce_rx: BTreeMap<(String, String), (u64, Reassembly)>,
    failures: VecDeque<ShipFailure>,
    pub(crate) stats: ShipStats,
    /// Whether any shipping surface was ever touched (gates the
    /// `archive.ship.*` introspection rows).
    active: bool,
}

impl ShipState {
    fn record_failure(&mut self, f: ShipFailure) {
        // One live row per (code, context): a flapping peer refreshes
        // its diagnostic instead of flooding the bounded buffer.
        self.failures
            .retain(|g| !(g.code() == f.code() && g.context() == f.context()));
        if self.failures.len() >= MAX_FAILURES {
            self.failures.pop_front();
        }
        self.failures.push_back(f);
    }

    /// Resolve request `req`: drop the pending entry and unblock every
    /// staged trigger that was waiting on it.
    fn resolve(&mut self, req: u64) {
        self.pending.remove(&req);
        let mut i = 0;
        while i < self.staged.len() {
            self.staged[i].outstanding.remove(&req);
            if self.staged[i].outstanding.is_empty() {
                let st = self.staged.remove(i);
                self.released.push_back((st.tuple, st.traced));
                self.stats.triggers_released += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Earliest fetch deadline, if any (folded into
    /// [`Node::next_timer`] so both harnesses schedule a wakeup).
    pub(crate) fn next_deadline(&self) -> Option<Time> {
        self.pending.values().map(|p| p.deadline).min()
    }
}

impl Node {
    /// Enroll a peer whose history this node will fetch on demand
    /// (pull mode). A deployment-provider `past()` installed here will
    /// stage its triggers until every enrolled peer's history of the
    /// scanned relations is covered.
    pub fn ship_add_peer(&mut self, peer: Addr) {
        self.ship.active = true;
        if peer != self.addr && !self.ship.peers.contains(&peer) {
            self.ship.peers.push(peer);
        }
    }

    /// Subscribe a collector: from now on, every GC sweep streams any
    /// enrolled relation whose history moved to `collector` as
    /// generation-numbered announce chunks.
    pub fn ship_subscribe(&mut self, collector: Addr) {
        self.ship.active = true;
        if collector != self.addr && !self.ship.collectors.contains(&collector) {
            self.ship.collectors.push(collector);
        }
    }

    /// Shipping counters.
    pub fn ship_stats(&self) -> ShipStats {
        self.ship.stats
    }

    /// Typed remote-history failures, oldest first (also reflected as
    /// `sysDiag` rows on [`Node::refresh_introspection`]).
    pub fn ship_failures(&self) -> impl Iterator<Item = &ShipFailure> + '_ {
        self.ship.failures.iter()
    }

    /// Whether `(origin, relation)` coverage is resolved here — either
    /// imported history or an authoritative "no history" answer.
    pub fn ship_covered(&self, origin: &Addr, relation: &str) -> bool {
        self.ship
            .covered
            .contains(&(origin.as_str().to_string(), relation.to_string()))
    }

    /// Whether any shipping surface was ever touched on this node.
    pub fn ship_active(&self) -> bool {
        self.ship.active
    }

    // ------------------------------------------------------ wire plumbing

    /// Send one ship message to `dst` as its own envelope. Ship frames
    /// never coalesce with application traffic and never enter the
    /// tracer — shipping moves infrastructure bytes, not tuples the
    /// monitored system produced.
    fn ship_send(&mut self, dst: &Addr, msg: &ShipMsg) {
        if let ShipMsg::Reply { bytes, .. } | ShipMsg::Announce { bytes, .. } = msg {
            self.ship.stats.bytes_sent += bytes.len() as u64;
        }
        let mut env = Envelope {
            tuples: Vec::new(),
            src: self.addr.clone(),
            dst: dst.clone(),
            src_tuple_ids: Vec::new(),
            delete: false,
        };
        env.push(msg.to_tuple(dst), None);
        self.metrics.tuples_sent += 1;
        self.metrics.msgs_sent += 1;
        self.outbox.push(env);
    }

    /// Intercept and handle a `sysShip` envelope. Returns `true` when
    /// the envelope was shipping traffic (the caller must not dispatch
    /// it further).
    pub(crate) fn ship_intercept(&mut self, env: &Envelope, now: Time) -> bool {
        if env.relation() != Some(p2_net::SHIP_RELATION) {
            return false;
        }
        self.ship.active = true;
        let src = env.src.clone();
        for tuple in &env.tuples {
            match ShipMsg::from_tuple(tuple) {
                Ok(msg) => self.ship_handle(&src, msg, now),
                Err(_) => {
                    self.ship.stats.strays += 1;
                    self.metrics.malformed_drops += 1;
                }
            }
        }
        true
    }

    fn ship_handle(&mut self, src: &Addr, msg: ShipMsg, now: Time) {
        match msg {
            ShipMsg::Request {
                req_id, relation, ..
            } => self.ship_serve_request(src, req_id, &relation, now),
            ShipMsg::Reply {
                req_id,
                relation,
                chunk,
                chunks,
                watermark,
                oldest_lo: _,
                bytes,
            } => self.ship_accept_reply(
                src,
                &relation,
                ReplyFrame {
                    req_id,
                    chunk,
                    chunks,
                    watermark,
                    bytes,
                },
            ),
            ShipMsg::Announce {
                gen,
                relation,
                chunk,
                chunks,
                delta,
                prev_hi,
                watermark,
                oldest_lo,
                bytes,
            } => self.ship_accept_announce(
                src,
                &relation,
                AnnounceFrame {
                    gen,
                    chunk,
                    chunks,
                    delta,
                    prev_hi,
                    watermark,
                    oldest_lo,
                    bytes,
                },
                now,
            ),
            ShipMsg::Nack {
                req_id,
                relation,
                reason,
            } => self.ship_accept_nack(src, req_id, &relation, reason),
        }
    }

    /// Origin side: serve a fetch. The request window is advisory —
    /// the full visible history ships, so the importer can answer any
    /// later window from the same snapshot.
    fn ship_serve_request(&mut self, src: &Addr, req_id: u64, relation: &str, now: Time) {
        match self.catalog.export_history_meta(relation, now) {
            Some(export) => {
                self.ship.stats.requests_served += 1;
                let watermark = export.watermark.unwrap_or(u64::MAX);
                let oldest_lo = export.oldest.unwrap_or(u64::MAX);
                let encoded: Vec<Vec<u8>> = export
                    .frames
                    .iter()
                    .map(|s| s.as_bytes().to_vec())
                    .collect();
                let batch = encode_batch(&encoded);
                let parts = chunk_payload(&batch, self.config.ship.chunk_bytes.max(1));
                let chunks = parts.len() as u32;
                for (i, bytes) in parts.into_iter().enumerate() {
                    self.ship.stats.reply_chunks_sent += 1;
                    self.ship_send(
                        src,
                        &ShipMsg::Reply {
                            req_id,
                            relation: relation.to_string(),
                            chunk: i as u32,
                            chunks,
                            watermark,
                            oldest_lo,
                            bytes,
                        },
                    );
                }
            }
            None => {
                self.ship.stats.nacks_sent += 1;
                self.ship_send(
                    src,
                    &ShipMsg::Nack {
                        req_id,
                        relation: relation.to_string(),
                        reason: "archiving disabled at origin".to_string(),
                    },
                );
            }
        }
    }

    /// Collector side: accept one reply chunk; on completion validate
    /// and import the snapshot and release whatever was staged on it.
    fn ship_accept_reply(&mut self, src: &Addr, relation: &str, frame: ReplyFrame) {
        self.ship.stats.reply_chunks_received += 1;
        self.ship.stats.bytes_received += frame.bytes.len() as u64;
        let Some(p) = self.ship.pending.get_mut(&frame.req_id) else {
            self.ship.stats.strays += 1; // late reply to a retired request
            return;
        };
        if p.relation != relation || &p.peer != src {
            self.ship.stats.strays += 1;
            return;
        }
        let payload = match p.reassembly.offer(frame.chunk, frame.chunks, frame.bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // more chunks coming
            Err(e) => {
                self.ship.record_failure(ShipFailure::BadSegment {
                    origin: src.as_str().to_string(),
                    relation: relation.to_string(),
                    detail: e.to_string(),
                });
                self.ship.resolve(frame.req_id);
                return;
            }
        };
        match ship_decode_segments(&payload, relation) {
            Ok(segments) => {
                let key = (src.as_str().to_string(), relation.to_string());
                self.catalog
                    .import_history(src.as_str(), relation, segments);
                // The snapshot establishes a fresh baseline for future
                // delta announces (or clears it when nothing is sealed).
                if frame.watermark == u64::MAX {
                    self.ship.announce_watermark.remove(&key);
                } else {
                    self.ship
                        .announce_watermark
                        .insert(key.clone(), frame.watermark);
                }
                self.ship.covered.insert(key);
                self.ship.stats.fetches_completed += 1;
                // A completed fetch supersedes any earlier "peer
                // unreachable" verdict — the peer came back (restart
                // recovery), so the stale failure must not linger.
                self.ship_clear_unreachable(src, relation);
            }
            Err(detail) => {
                self.ship.record_failure(ShipFailure::BadSegment {
                    origin: src.as_str().to_string(),
                    relation: relation.to_string(),
                    detail,
                });
            }
        }
        self.ship.resolve(frame.req_id);
    }

    /// Drop a lingering `P2S902` (peer unreachable) diagnostic for
    /// `origin/relation` once history flows from that peer again.
    fn ship_clear_unreachable(&mut self, origin: &Addr, relation: &str) {
        self.ship.failures.retain(|f| {
            !matches!(f, ShipFailure::PeerUnreachable { origin: o, relation: r }
                if o == origin.as_str() && r == relation)
        });
    }

    /// Collector side: a peer refused. That is an *answer* — coverage
    /// resolves (so queries stop waiting on this pair) and the refusal
    /// stays queryable as a typed failure.
    fn ship_accept_nack(&mut self, src: &Addr, req_id: u64, relation: &str, reason: String) {
        self.ship.stats.nacks_received += 1;
        let Some(p) = self.ship.pending.get(&req_id) else {
            self.ship.stats.strays += 1;
            return;
        };
        if p.relation != relation || &p.peer != src {
            self.ship.stats.strays += 1;
            return;
        }
        self.ship.record_failure(ShipFailure::NoHistory {
            origin: src.as_str().to_string(),
            relation: relation.to_string(),
            reason,
        });
        self.ship
            .covered
            .insert((src.as_str().to_string(), relation.to_string()));
        self.ship.resolve(req_id);
    }

    /// Collector side: accept one announce chunk (subscribe mode). A
    /// complete *full* snapshot replaces whatever is held; a complete
    /// *delta* extends the held baseline — but only when this
    /// collector actually holds the baseline the origin extended
    /// (`prev_hi`). A mismatch means a missed generation (loss window,
    /// collector restart): the delta is discarded and coverage is
    /// repaired with an ordinary pull fetch, whose reply carries the
    /// origin's full history and a fresh baseline watermark.
    fn ship_accept_announce(
        &mut self,
        src: &Addr,
        relation: &str,
        frame: AnnounceFrame,
        now: Time,
    ) {
        self.ship.stats.announce_chunks_received += 1;
        self.ship.stats.bytes_received += frame.bytes.len() as u64;
        let key = (src.as_str().to_string(), relation.to_string());
        let gen = frame.gen;
        if self.ship.announce_last.get(&key).is_some_and(|&g| gen <= g) {
            return; // stale generation
        }
        let rx = self
            .ship
            .announce_rx
            .entry(key.clone())
            .or_insert_with(|| (gen, Reassembly::new()));
        if rx.0 < gen {
            *rx = (gen, Reassembly::new()); // newer snapshot supersedes
        } else if rx.0 > gen {
            return;
        }
        let payload = match rx.1.offer(frame.chunk, frame.chunks, frame.bytes) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(e) => {
                self.ship.announce_rx.remove(&key);
                self.ship.record_failure(ShipFailure::BadSegment {
                    origin: key.0,
                    relation: relation.to_string(),
                    detail: e.to_string(),
                });
                return;
            }
        };
        self.ship.announce_rx.remove(&key);
        if frame.delta {
            let held = self.ship.announce_watermark.get(&key).copied();
            if held.is_none_or(|w| w < frame.prev_hi) {
                // Gap: we never saw the baseline this delta extends.
                // Keep what we hold and re-fetch the full history.
                self.ship_refetch(src, relation, now);
                return;
            }
        }
        match ship_decode_segments(&payload, relation) {
            Ok(segments) => {
                if frame.delta {
                    self.catalog.import_history_delta(
                        src.as_str(),
                        relation,
                        frame.prev_hi,
                        frame.oldest_lo,
                        segments,
                    );
                } else {
                    self.catalog
                        .import_history(src.as_str(), relation, segments);
                }
                if frame.watermark == u64::MAX {
                    self.ship.announce_watermark.remove(&key);
                } else {
                    self.ship
                        .announce_watermark
                        .insert(key.clone(), frame.watermark);
                }
                self.ship.announce_last.insert(key.clone(), gen);
                self.ship.covered.insert(key);
                self.ship.stats.announces_applied += 1;
                self.ship_clear_unreachable(src, relation);
            }
            Err(detail) => {
                self.ship.record_failure(ShipFailure::BadSegment {
                    origin: key.0,
                    relation: relation.to_string(),
                    detail,
                });
            }
        }
    }

    /// Issue a standalone full fetch of `(peer, relation)` — the
    /// delta-gap repair path — joining any in-flight fetch of the same
    /// pair instead of duplicating it. Nothing stages on it; the
    /// timeout machinery retries and resolves it like any other fetch.
    fn ship_refetch(&mut self, peer: &Addr, relation: &str, now: Time) {
        let dup = self
            .ship
            .pending
            .values()
            .any(|p| &p.peer == peer && p.relation == relation);
        if !dup {
            self.ship_send_request(peer, relation, now);
        }
    }

    // ------------------------------------------------------- pull staging

    /// Decide whether an event trigger must be staged behind fetches.
    /// Called by the dispatcher just before firing event strands: when
    /// any watching strand scans history through the deployment
    /// provider and some enrolled `(peer, relation)` pair is not yet
    /// covered, requests go out, the trigger parks, and the caller
    /// must *not* fire the strands now. Periodic- and table-triggered
    /// deployment scans are not staged — they see whatever coverage
    /// subscribe mode (or earlier fetches) already established.
    pub(crate) fn ship_stage_event(
        &mut self,
        strand_idxs: &[usize],
        tuple: &Tuple,
        traced: bool,
        now: Time,
    ) -> bool {
        if self.ship.peers.is_empty() {
            return false;
        }
        let mut rels: BTreeSet<String> = BTreeSet::new();
        for &idx in strand_idxs {
            for rel in self.strands[idx].remote_history_relations() {
                rels.insert(rel.to_string());
            }
        }
        if rels.is_empty() {
            return false;
        }
        let mut outstanding = BTreeSet::new();
        let peers = self.ship.peers.clone();
        for peer in &peers {
            for rel in &rels {
                let key = (peer.as_str().to_string(), rel.clone());
                if self.ship.covered.contains(&key) {
                    continue;
                }
                // Join an in-flight fetch of the same pair rather than
                // issuing a duplicate.
                if let Some((&req, _)) = self
                    .ship
                    .pending
                    .iter()
                    .find(|(_, p)| &p.peer == peer && &p.relation == rel)
                {
                    outstanding.insert(req);
                    continue;
                }
                let req = self.ship_send_request(peer, rel, now);
                outstanding.insert(req);
            }
        }
        if outstanding.is_empty() {
            return false; // full coverage: fire immediately
        }
        self.ship.stats.triggers_staged += 1;
        self.ship.staged.push(StagedTrigger {
            tuple: tuple.clone(),
            traced,
            outstanding,
        });
        true
    }

    /// Issue one fetch request and register its pending entry.
    fn ship_send_request(&mut self, peer: &Addr, relation: &str, now: Time) -> u64 {
        self.ship.next_req += 1;
        let req = self.ship.next_req;
        self.ship.pending.insert(
            req,
            PendingFetch {
                peer: peer.clone(),
                relation: relation.to_string(),
                deadline: now + self.config.ship.fetch_timeout,
                retries: 0,
                reassembly: Reassembly::new(),
            },
        );
        self.ship.stats.requests_sent += 1;
        self.ship_send(
            peer,
            &ShipMsg::Request {
                req_id: req,
                relation: relation.to_string(),
                t0: Time::ZERO,
                t1: Time(u64::MAX),
            },
        );
        req
    }

    /// Expire overdue fetches: resend within the retry budget (under a
    /// fresh request id, so a straggling original reply is ignored as
    /// a stray rather than corrupting reassembly), otherwise declare
    /// the peer unreachable and release the staged triggers without
    /// that coverage. Runs at the head of [`Node::fire_timers`] — the
    /// harnesses schedule the wakeup through [`Node::next_timer`].
    pub(crate) fn ship_check_timeouts(&mut self, now: Time) {
        let due: Vec<u64> = self
            .ship
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&r, _)| r)
            .collect();
        for req in due {
            let Some(p) = self.ship.pending.remove(&req) else {
                continue;
            };
            if p.retries < self.config.ship.max_retries {
                self.ship.stats.retries += 1;
                self.ship.next_req += 1;
                let fresh = self.ship.next_req;
                self.ship.pending.insert(
                    fresh,
                    PendingFetch {
                        peer: p.peer.clone(),
                        relation: p.relation.clone(),
                        deadline: now + self.config.ship.fetch_timeout,
                        retries: p.retries + 1,
                        reassembly: Reassembly::new(),
                    },
                );
                for st in &mut self.ship.staged {
                    if st.outstanding.remove(&req) {
                        st.outstanding.insert(fresh);
                    }
                }
                self.ship.stats.requests_sent += 1;
                self.ship_send(
                    &p.peer.clone(),
                    &ShipMsg::Request {
                        req_id: fresh,
                        relation: p.relation,
                        t0: Time::ZERO,
                        t1: Time(u64::MAX),
                    },
                );
            } else {
                self.ship.stats.timeouts += 1;
                self.ship.record_failure(ShipFailure::PeerUnreachable {
                    origin: p.peer.as_str().to_string(),
                    relation: p.relation,
                });
                self.ship.resolve(req);
            }
        }
    }

    // --------------------------------------------------- subscribe stream

    /// Stream changed histories to subscribed collectors. Runs from
    /// [`Node::trace_gc`] — the same population-global instant in both
    /// harnesses, which is what keeps announce timing (and therefore
    /// collector state) bit-identical at any shard count.
    ///
    /// When the sealed tier has only *grown* since the last announce
    /// (same baseline segments, new ones appended — the steady state),
    /// the stream is a **delta**: only segments sealed past the last
    /// announced watermark plus the open tail ship, and the collector
    /// splices them onto the baseline it already holds. Any rewrite of
    /// the baseline — compaction, retention pruning, age drops, or a
    /// relation with nothing sealed yet — falls back to the full
    /// snapshot, which is what keeps a collector's imported history
    /// byte-identical to the origin's export at all times.
    pub(crate) fn ship_announce_pump(&mut self, now: Time) {
        if self.ship.collectors.is_empty() {
            return;
        }
        let relations: Vec<String> = self.catalog.enrolled_relations().to_vec();
        for rel in relations {
            let version = self.catalog.version_of(&rel);
            if self.ship.announced_version.get(&rel) == Some(&version) {
                continue; // nothing moved since the last stream
            }
            let Some(export) = self.catalog.export_history_meta(&rel, now) else {
                return; // archiving off: nothing to stream at all
            };
            self.ship.announced_version.insert(rel.clone(), version);
            self.ship.announce_gen += 1;
            let gen = self.ship.announce_gen;
            let sealed = &export.frames[..export.sealed];
            let watermark = export.watermark.unwrap_or(u64::MAX);
            let oldest_lo = export.oldest.unwrap_or(u64::MAX);
            // Delta iff the previously announced baseline is still a
            // literal prefix of the sealed tier.
            let prev = self.ship.announced_baseline.get(&rel).copied();
            let delta_from = prev.and_then(|(prev_hi, fp)| {
                let baseline: Vec<&Segment> =
                    sealed.iter().filter(|s| s.epoch_hi() <= prev_hi).collect();
                (baseline_fingerprint(baseline.iter().copied()) == fp).then_some(prev_hi)
            });
            if export.sealed > 0 {
                self.ship.announced_baseline.insert(
                    rel.clone(),
                    (
                        export.watermark.unwrap_or(0),
                        baseline_fingerprint(sealed.iter()),
                    ),
                );
            } else {
                self.ship.announced_baseline.remove(&rel);
            }
            let ship_frames: Vec<&Segment> = match delta_from {
                Some(prev_hi) => {
                    let fresh: Vec<&Segment> = export.frames[..export.sealed]
                        .iter()
                        .filter(|s| s.epoch_hi() > prev_hi)
                        .chain(export.frames[export.sealed..].iter())
                        .collect();
                    self.ship.stats.delta_segments += fresh
                        .len()
                        .saturating_sub(export.frames.len() - export.sealed)
                        as u64;
                    fresh
                }
                None => export.frames.iter().collect(),
            };
            let encoded: Vec<Vec<u8>> = ship_frames.iter().map(|s| s.as_bytes().to_vec()).collect();
            let batch = encode_batch(&encoded);
            let parts = chunk_payload(&batch, self.config.ship.chunk_bytes.max(1));
            let chunks = parts.len() as u32;
            let collectors = self.ship.collectors.clone();
            for dst in &collectors {
                for (i, bytes) in parts.iter().enumerate() {
                    self.ship.stats.announce_chunks_sent += 1;
                    self.ship_send(
                        dst,
                        &ShipMsg::Announce {
                            gen,
                            relation: rel.clone(),
                            chunk: i as u32,
                            chunks,
                            delta: delta_from.is_some(),
                            prev_hi: delta_from.unwrap_or(0),
                            watermark,
                            oldest_lo,
                            bytes: bytes.clone(),
                        },
                    );
                }
            }
        }
    }
}

/// Fingerprint a sealed-tier prefix: FNV over each segment's epoch
/// range, byte length, and row count. Two sealed tiers with the same
/// fingerprint hold the same segments for the delta protocol's purposes
/// (compaction, pruning, and age drops all change it).
fn baseline_fingerprint<'a>(segments: impl Iterator<Item = &'a Segment>) -> u64 {
    let mut buf = Vec::new();
    for s in segments {
        buf.extend_from_slice(&s.epoch_lo().to_le_bytes());
        buf.extend_from_slice(&s.epoch_hi().to_le_bytes());
        buf.extend_from_slice(&(s.len_bytes() as u64).to_le_bytes());
        buf.extend_from_slice(&s.row_count().to_le_bytes());
    }
    p2_types::rng::fnv1a(&buf)
}

/// Decode a reassembled payload into validated segments, all of the
/// expected relation. Any hostile, truncated, or misdirected byte maps
/// to a rendered error string, never a panic.
fn ship_decode_segments(payload: &[u8], relation: &str) -> Result<Vec<Segment>, String> {
    let frames = decode_batch(payload).map_err(|e| e.to_string())?;
    let mut segments = Vec::with_capacity(frames.len());
    for f in &frames {
        let seg = Segment::from_bytes(f).map_err(|e| e.to_string())?;
        if seg.relation() != relation {
            return Err(format!(
                "segment for '{}' shipped under '{relation}'",
                seg.relation()
            ));
        }
        segments.push(seg);
    }
    Ok(segments)
}
