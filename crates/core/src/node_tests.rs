use super::*;

fn node(name: &str) -> Node {
    Node::new(
        Addr::new(name),
        NodeConfig {
            stagger_timers: false,
            ..Default::default()
        },
    )
}

#[test]
fn install_and_fact_insertion() {
    let mut n = node("n1");
    n.install(
        "materialize(link, infinity, infinity, keys(1, 2)).
         link@\"n1\"(\"n2\", 3).",
        Time::ZERO,
    )
    .unwrap();
    let out = n.pump(Time::ZERO);
    assert!(out.is_empty());
    let rows = n.table_scan("link", Time::ZERO);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(1), Some(&Value::str("n2")));
}

#[test]
fn event_rule_chain_and_routing() {
    let mut n = node("n1");
    n.install(
        "r1 hop@\"n2\"(X) :- go@N(X).
         r2 local@N(X) :- go@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("local");
    n.inject(Tuple::new("go", [Value::addr("n1"), Value::Int(5)]));
    let out = n.pump(Time::ZERO);
    // r1's head routes to n2 over the network.
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].dst, Addr::new("n2"));
    assert_eq!(out[0].tuples[0].name(), "hop");
    // r2's head is a local event, observed by the watch.
    assert_eq!(n.watched("local").len(), 1);
    assert_eq!(n.metrics().msgs_sent, 1);
}

#[test]
fn table_delta_rules_fire() {
    let mut n = node("n1");
    n.install(
        "materialize(succ, infinity, infinity, keys(1, 2)).
         d twice@N(S) :- succ@N(S).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("twice");
    n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(9)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("twice").len(), 1);
    // Identical re-insertion refreshes without a delta.
    n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(9)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("twice").len(), 1, "refresh must not re-fire");
}

#[test]
fn periodic_timer_fires_and_reschedules() {
    let mut n = node("n1");
    n.install("p tick@N(E) :- periodic@N(E, 2).", Time::ZERO)
        .unwrap();
    n.watch("tick");
    assert_eq!(n.next_timer(), Some(Time::from_secs(2)));
    n.fire_timers(Time::from_secs(2));
    n.pump(Time::from_secs(2));
    assert_eq!(n.watched("tick").len(), 1);
    assert_eq!(n.next_timer(), Some(Time::from_secs(4)));
    // Catch-up: far-future firing fires once and reschedules beyond.
    n.fire_timers(Time::from_secs(11));
    n.pump(Time::from_secs(11));
    assert_eq!(n.watched("tick").len(), 2);
    assert!(n.next_timer().unwrap() > Time::from_secs(11));
}

#[test]
fn delete_rule_removes_rows() {
    let mut n = node("n1");
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).
         t@\"n1\"(1). t@\"n1\"(2).
         d delete t@N(X) :- zap@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("t", Time::ZERO).len(), 2);
    n.inject(Tuple::new("zap", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    let rows = n.table_scan("t", Time::ZERO);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(1), Some(&Value::Int(2)));
    assert_eq!(n.metrics().deletes, 1);
}

#[test]
fn remote_delivery_and_delete() {
    let mut n = node("n2");
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    let t = Tuple::new("t", [Value::addr("n2"), Value::Int(7)]);
    n.deliver(
        Envelope::new(t.clone(), Addr::new("n1"), Addr::new("n2")),
        Time::ZERO,
    );
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("t", Time::ZERO).len(), 1);
    // Remote delete.
    let mut del = Envelope::new(t, Addr::new("n1"), Addr::new("n2"));
    del.delete = true;
    n.deliver(del, Time::ZERO);
    assert_eq!(n.table_scan("t", Time::ZERO).len(), 0);
}

#[test]
fn batched_delivery_dispatches_every_tuple() {
    let mut n = node("n2");
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    let mut env = Envelope {
        tuples: Vec::new(),
        src: Addr::new("n1"),
        dst: Addr::new("n2"),
        src_tuple_ids: Vec::new(),
        delete: false,
    };
    for i in 0..5 {
        env.push(Tuple::new("t", [Value::addr("n2"), Value::Int(i)]), None);
    }
    n.deliver(env, Time::ZERO);
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("t", Time::ZERO).len(), 5);
    assert_eq!(n.metrics().msgs_received, 1);
    assert_eq!(n.metrics().tuples_dispatched, 5);
}

#[test]
fn outbox_coalesces_consecutive_same_destination_outputs() {
    let mut n = node("n1");
    n.install("r1 hop@\"n2\"(X) :- go@N(X).", Time::ZERO)
        .unwrap();
    for i in 0..4 {
        n.inject(Tuple::new("go", [Value::addr("n1"), Value::Int(i)]));
    }
    let out = n.pump(Time::ZERO);
    // Four outputs, one frame: same (dst, relation, delete) run.
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].len(), 4);
    assert_eq!(n.metrics().msgs_sent, 1);
    assert_eq!(n.metrics().tuples_sent, 4);
}

#[test]
fn envelope_flush_threshold_cuts_runs() {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            envelope_flush_threshold: 3,
            ..Default::default()
        },
    );
    n.install("r1 hop@\"n2\"(X) :- go@N(X).", Time::ZERO)
        .unwrap();
    for i in 0..7 {
        n.inject(Tuple::new("go", [Value::addr("n1"), Value::Int(i)]));
    }
    let out = n.pump(Time::ZERO);
    let sizes: Vec<usize> = out.iter().map(Envelope::len).collect();
    assert_eq!(sizes, vec![3, 3, 1]);
    assert_eq!(n.metrics().msgs_sent, 3);
    assert_eq!(n.metrics().tuples_sent, 7);
}

#[test]
fn silent_relations_take_the_wholesale_path() {
    let mut n = node("n1");
    // No rule reads t, so its run goes through insert_batch wholesale.
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("t");
    for i in 0..10 {
        n.inject(Tuple::new("t", [Value::addr("n1"), Value::Int(i)]));
    }
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("t", Time::ZERO).len(), 10);
    assert_eq!(n.metrics().tuples_dispatched, 10);
    // Watches still see every tuple, in order.
    let seen: Vec<_> = n
        .watched("t")
        .iter()
        .map(|(_, t)| t.get(1).cloned().unwrap())
        .collect();
    assert_eq!(seen, (0..10).map(Value::Int).collect::<Vec<_>>());
}

#[test]
fn tracing_produces_rule_exec_rows() {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            tracing: true,
            stagger_timers: false,
            ..Default::default()
        },
    );
    n.install(
        "materialize(prec, infinity, infinity, keys(1, 2)).
         prec@\"n1\"(4).
         r1 head@N(Z) :- ev@N(Z), prec@N(Z).",
        Time::ZERO,
    )
    .unwrap();
    n.pump(Time::ZERO);
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
    n.pump(Time::ZERO);
    let execs = n.table_scan("ruleExec", Time::ZERO);
    // The paper's worked example: 2 rows (event cause + precondition
    // cause) — but the fact insertion itself is untraced here because
    // facts fire no strands; only r1's execution shows up.
    assert_eq!(execs.len(), 2);
    let tt = n.table_scan("tupleTable", Time::ZERO);
    assert!(tt.len() >= 3);
}

#[test]
fn tracing_off_produces_nothing() {
    let mut n = node("n1");
    n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert!(n.table_scan("ruleExec", Time::ZERO).is_empty());
}

#[test]
fn uninstall_removes_strands_and_timers() {
    let mut n = node("n1");
    let keep = n.install("k out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
    let gone = n
        .install("g out2@N(E) :- periodic@N(E, 5).", Time::ZERO)
        .unwrap();
    assert_eq!(n.strand_count(), 2);
    assert!(n.next_timer().is_some());
    n.uninstall(gone);
    assert_eq!(n.strand_count(), 1);
    assert!(n.next_timer().is_none());
    // The kept rule still works.
    n.watch("out");
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("out").len(), 1);
    let _ = keep;
}

#[test]
fn runaway_rules_hit_dispatch_budget() {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            max_dispatch_per_pump: 1_000,
            stagger_timers: false,
            ..Default::default()
        },
    );
    // a and b feed each other forever.
    n.install("r1 a@N(X) :- b@N(X). r2 b@N(X) :- a@N(X).", Time::ZERO)
        .unwrap();
    n.inject(Tuple::new("a", [Value::addr("n1"), Value::Int(0)]));
    n.pump(Time::ZERO); // must terminate
    assert!(n.metrics().overflow_drops > 0);
}

#[test]
fn budget_covers_strand_steps_and_counts_abandoned_work() {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            max_dispatch_per_pump: 4,
            stagger_timers: false,
            ..Default::default()
        },
    );
    n.install(
        "materialize(p, infinity, infinity, keys(2)).
         r1 out@N(Y) :- ev@N(X), p@N(Y).",
        Time::ZERO,
    )
    .unwrap();
    // Seed the joined table (its inserts are silent, so one pump's
    // budget of 4 covers all rows wholesale).
    for i in 0..4 {
        n.inject(Tuple::new("p", [Value::addr("n1"), Value::Int(i)]));
    }
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("p", Time::ZERO).len(), 4);
    assert_eq!(n.metrics().strand_overflow_drops, 0);
    // One event probes 4 matches: dispatch + pipeline steps overrun the
    // budget, so the tail of the join is abandoned and counted.
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(0)]));
    n.pump(Time::ZERO); // must terminate
    assert!(n.metrics().strand_overflow_drops > 0, "{:?}", n.metrics());
    // The node is healthy afterwards: the next pump starts fresh.
    n.watch("out");
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert!(!n.watched("out").is_empty());
}

#[test]
fn malformed_location_is_counted_not_fatal() {
    let mut n = node("n1");
    n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
    // Event whose bound location is a non-address: head location
    // coercion turns strings into addrs, but an Int location fails.
    n.inject(Tuple::new("ev", [Value::Int(9), Value::Int(1)]));
    n.pump(Time::ZERO);
    // The trigger bound N := Int(9); the head built out(9, 1) whose
    // location is not an address → dropped and counted.
    assert_eq!(n.metrics().malformed_drops, 1);
}

#[test]
fn watch_take_and_peek() {
    let mut n = node("n1");
    n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
    n.watch("out");
    for i in 0..3 {
        n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(i)]));
    }
    n.pump(Time::ZERO);
    assert_eq!(n.watched("out").len(), 3);
    let taken = n.take_watched("out");
    assert_eq!(taken.len(), 3);
    assert!(n.watched("out").is_empty(), "take drains");
    // Watch keeps observing after a drain.
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(9)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("out").len(), 1);
}

#[test]
fn tracing_toggles_at_runtime() {
    let mut n = node("n1");
    n.install(
        "materialize(prec, infinity, infinity, keys(1, 2)).
         prec@\"n1\"(4).
         r1 head@N(Z) :- ev@N(Z), prec@N(Z).",
        Time::ZERO,
    )
    .unwrap();
    n.pump(Time::ZERO);
    assert!(!n.tracing());
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
    n.pump(Time::ZERO);
    assert!(n.table_scan("ruleExec", Time::ZERO).is_empty());
    // Flip tracing on mid-life: subsequent executions are traced.
    n.set_tracing(true);
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("ruleExec", Time::ZERO).len(), 2);
    // And off again.
    n.set_tracing(false);
    let before = n.table_scan("ruleExec", Time::ZERO).len();
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]));
    n.pump(Time::ZERO);
    assert_eq!(n.table_scan("ruleExec", Time::ZERO).len(), before);
}

#[test]
fn event_log_records_arrivals_and_removals() {
    let mut cfg = NodeConfig {
        tracing: true,
        stagger_timers: false,
        ..Default::default()
    };
    cfg.trace.log_events = true;
    let mut n = Node::new(Addr::new("n1"), cfg);
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).
         d delete t@N(X) :- zap@N(X), t@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.inject(Tuple::new("t", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    n.inject(Tuple::new("zap", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    let log = n.table_scan(p2_trace::EVENT_LOG, Time::ZERO);
    let ops: Vec<(String, String)> = log
        .iter()
        .filter_map(|r| Some((r.get(1)?.to_string(), r.get(2)?.to_string())))
        .collect();
    assert!(ops.contains(&("t".into(), "arrive".into())), "{ops:?}");
    assert!(ops.contains(&("zap".into(), "arrive".into())), "{ops:?}");
    assert!(ops.contains(&("t".into(), "remove".into())), "{ops:?}");
    // The log never logs itself or the trace tables.
    assert!(ops
        .iter()
        .all(|(rel, _)| rel != "eventLog" && rel != "ruleExec"));
}

#[test]
fn event_log_off_by_default() {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            tracing: true,
            stagger_timers: false,
            ..Default::default()
        },
    );
    n.install("r1 out@N(X) :- ev@N(X).", Time::ZERO).unwrap();
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert!(n.table_scan(p2_trace::EVENT_LOG, Time::ZERO).is_empty());
}

#[test]
fn install_registers_join_probe_indexes() {
    let mut n = node("n1");
    n.install(
        "materialize(pred, infinity, 16, keys(1)).
         materialize(succ, infinity, 16, keys(1, 2)).
         r1 out@N(P) :- ev@N(X), pred@N(PID, P), succ@N(X, S).",
        Time::ZERO,
    )
    .unwrap();
    // pred is probed on no selective field beyond the location (both
    // body fields bind), so only its location could be probed; succ is
    // probed on field 1 (X is bound by the trigger).
    assert_eq!(n.catalog_mut().indexed_fields("succ"), vec![1]);
    // A second program over the *same* base tables adds its own index
    // without re-declaring them.
    n.install("q1 hit@N(S) :- chk@N(S), succ@N(X, S).", Time::ZERO)
        .unwrap();
    assert_eq!(n.catalog_mut().indexed_fields("succ"), vec![1, 2]);
}

#[test]
fn install_errors_are_typed() {
    let mut n = node("n1");
    assert!(matches!(
        n.install("r1 out@A(X) :- .", Time::ZERO),
        Err(InstallError::Compile(_))
    ));
    assert!(matches!(
        n.install("r h@N() :- e1@N(X), e2@N(Y).", Time::ZERO),
        Err(InstallError::Plan(_))
    ));
    n.install("materialize(t, 10, 10, keys(1)).", Time::ZERO)
        .unwrap();
    assert!(matches!(
        n.install("materialize(t, 99, 10, keys(1)).", Time::ZERO),
        Err(InstallError::Catalog(_))
    ));
}

#[test]
fn shared_prefix_family_installs_as_one_runtime() {
    let mut n = node("n1");
    n.install(
        "materialize(t, 100, 100, keys(1, 2, 3)).
         r1 outa@N(X, Y) :- ev@N(X), t@N(X, Y).
         r2 outb@N(X, Y) :- ev@N(X), t@N(X, Y).",
        Time::ZERO,
    )
    .unwrap();
    // Two strands planned, one family runtime installed.
    assert_eq!(n.strand_count(), 2);
    assert_eq!(n.strands.len(), 1);
    n.watch("outa");
    n.watch("outb");
    n.inject(Tuple::new(
        "t",
        [Value::addr("n1"), Value::Int(1), Value::Int(7)],
    ));
    n.pump(Time::ZERO);
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("outa").len(), 1);
    assert_eq!(n.watched("outb").len(), 1);
    // Both branches report their own firing through strand_stats.
    let fired: Vec<u64> = n
        .strand_stats()
        .into_iter()
        .map(|(_, _, s)| s.fired)
        .collect();
    assert_eq!(fired, vec![1, 1]);
}

#[test]
fn dead_rule_diagnostic_surfaces_and_clears_on_uninstall() {
    let mut n = node("n1");
    let pid = n
        .install("d1 out@N(X) :- ev@N(X), 1 == 2.", Time::ZERO)
        .unwrap();
    let diags: Vec<String> = n.plan_diagnostics().map(|d| d.message.clone()).collect();
    assert_eq!(diags.len(), 1);
    assert!(diags[0].contains("dead"), "got: {}", diags[0]);
    // The dead rule legally produces nothing.
    n.watch("out");
    n.inject(Tuple::new("ev", [Value::addr("n1"), Value::Int(1)]));
    n.pump(Time::ZERO);
    assert_eq!(n.watched("out").len(), 0);
    n.uninstall(pid);
    assert_eq!(n.plan_diagnostics().count(), 0);
}

#[test]
fn optimizer_off_matches_full_end_to_end() {
    let src = "materialize(t, 100, 100, keys(1, 2, 3)).
         r1 out@N(X, Z, W) :- ev@N(X, K), t@N(X, Z), W := Z * 2 + 1, K > 0.";
    let drive = |opts: p2_planner::PlanOpts| {
        let mut n = Node::new(
            Addr::new("n1"),
            NodeConfig {
                stagger_timers: false,
                plan: opts,
                ..Default::default()
            },
        );
        n.install(src, Time::ZERO).unwrap();
        n.watch("out");
        for z in 0..4 {
            n.inject(Tuple::new(
                "t",
                [Value::addr("n1"), Value::Int(1), Value::Int(z)],
            ));
        }
        n.pump(Time::ZERO);
        n.inject(Tuple::new(
            "ev",
            [Value::addr("n1"), Value::Int(1), Value::Int(5)],
        ));
        n.pump(Time::ZERO);
        let mut got: Vec<String> = n
            .watched("out")
            .iter()
            .map(|(_, t)| t.to_string())
            .collect();
        got.sort();
        got
    };
    let off = drive(p2_planner::PlanOpts::off());
    let full = drive(p2_planner::PlanOpts::default());
    assert_eq!(off.len(), 4);
    assert_eq!(off, full);
}

#[test]
fn forensic_node_answers_past_queries_after_expiry() {
    // The tentpole end-to-end: a forensic-mode node materializes a
    // 2-second table, lets every row expire, and a later OverLog rule
    // ranging over `past()` still reconstructs what was there.
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            ..NodeConfig::forensic()
        },
    );
    n.install(
        "materialize(succ, 2, 8, keys(1, 2)).
         f1 wasSucc@N(S) :- probe@N(T0, T1), past@N(\"succ\", T0, T1, N, S).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("wasSucc");
    n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(9)]));
    n.pump(Time::from_secs(1));

    // By t=30 the row is long gone from the live table...
    let later = Time::from_secs(30);
    assert!(n.table_scan("succ", later).is_empty());

    // ...but the archive still answers for the [0s, 10s] window.
    n.inject(Tuple::new(
        "probe",
        [Value::addr("n1"), Value::Int(0), Value::Int(10)],
    ));
    n.pump(later);
    let hits = n.watched("wasSucc");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].1.get(1), Some(&Value::id(9)));
}

#[test]
fn archive_enrollment_follows_the_policy() {
    use p2_store::ArchiveConfig;
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            tracing: true,
            stagger_timers: false,
            archive: Some(ArchiveMode {
                config: ArchiveConfig::default(),
                enroll: ArchiveEnroll::Named(vec!["succ".into()]),
            }),
            ..Default::default()
        },
    );
    n.install(
        "materialize(succ, 2, 8, keys(1, 2)).
         materialize(other, 2, 8, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    n.inject(Tuple::new("succ", [Value::addr("n1"), Value::id(1)]));
    n.inject(Tuple::new("other", [Value::addr("n1"), Value::id(2)]));
    n.pump(Time::ZERO);
    let later = Time::from_secs(10);
    // Named policy: succ's history survives, other's does not.
    let succ = n.history_scan("succ", Time::ZERO, later, later).unwrap();
    assert_eq!(succ.len(), 1);
    assert!(succ[0].dropped_at.is_some(), "row expired into the archive");
    let other = n.history_scan("other", Time::ZERO, later, later).unwrap();
    assert!(other.is_empty());
    // Trace tables enroll under every policy.
    let traced = n
        .history_scan(p2_trace::RULE_EXEC, Time::ZERO, later, later)
        .unwrap();
    let _ = traced; // may be empty (no rules fired), but must not error
}
