//! Crash-restart recovery, end to end (ISSUE 10 acceptance criteria).
//!
//! The headline invariant: a node that crashes at **any** injected
//! fault point and restarts recovers a *clean prefix* of its sealed
//! archive epochs — never a torn frame, never a panic — and `past()`
//! forensic queries over the recovered history byte-match the no-crash
//! run restricted to those epochs. The invariant holds identically
//! under the sequential engine and the sharded engine at every shard
//! count, because the durable store is handed across the restart as a
//! value and recovery replays the same append stream everywhere.
//!
//! Alongside: restart without durability loses everything (the
//! control), silent corruption is quarantined and surfaced in
//! `sysStat`, a collector whose pull timed out against a crashed
//! origin re-fetches successfully after the origin restarts (and the
//! typed P2S902 failure is cleared), and subscribe-mode announces
//! survive a restart thanks to the boot-counter generation bump.

use p2ql::core::{
    DurabilityMode, DurableBackend, NodeConfig, ParallelHarness, Population, ShipFailure,
    SimHarness,
};
use p2ql::net::SimConfig;
use p2ql::planner::PlanOpts;
use p2ql::store::{Fault, FaultPlan};
use p2ql::types::{Addr, Time, TimeDelta, Tuple, Value};

const APP: &str = r#"
materialize(seen, 5, 32, keys(1, 2)).
r1 seen@N(X) :- ping@N(X).
"#;

const DEPLOY_FORENSICS: &str = r#"
materialize(seen, 5, 32, keys(1, 2)).
f1 hist@N(O, S) :- probe@N(T0, T1), past@N("seen", T0, T1, O, S).
"#;

fn forensic_config() -> NodeConfig {
    NodeConfig {
        stagger_timers: false,
        ..NodeConfig::forensic()
    }
}

/// Forensic node with the in-memory durable log, optionally faulted.
fn durable_config(plan: Option<FaultPlan>) -> NodeConfig {
    NodeConfig {
        durability: Some(DurabilityMode {
            backend: DurableBackend::Memory,
            fsync: false,
            plan,
        }),
        ..forensic_config()
    }
}

fn collector_config() -> NodeConfig {
    NodeConfig {
        plan: PlanOpts {
            history: p2ql::planner::HistoryProvider::Deployment,
            ..PlanOpts::default()
        },
        ..forensic_config()
    }
}

/// Three pings inside [0s, 40s], then GC sweeps past the 5 s row
/// lifetime (each sweep also seals epochs into the durable log).
fn incident<H: Population>(sim: &mut H, origin: &Addr) {
    for (t, x) in [(10u64, 7i64), (20, 11), (30, 42)] {
        sim.run_until(Time::from_secs(t));
        sim.inject(
            origin,
            Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(x)]),
        );
    }
    for t in [100u64, 200, 300] {
        sim.run_until(Time::from_secs(t));
        sim.node_mut(origin).trace_gc(Time::from_secs(t));
    }
    sim.run_until(Time::from_secs(301));
}

/// Ask `asker` the forensic question; canonical sorted answers.
fn ask<H: Population>(sim: &mut H, asker: &Addr) -> Vec<String> {
    sim.node_mut(asker).watch("hist");
    sim.inject(
        asker,
        Tuple::new(
            "probe",
            [Value::Addr(asker.clone()), Value::Int(0), Value::Int(40)],
        ),
    );
    sim.run_for(TimeDelta::from_secs(1));
    let mut out: Vec<String> = sim
        .node_mut(asker)
        .take_watched("hist")
        .into_iter()
        .map(|(_, t)| {
            let args: Vec<String> = t.values().iter().skip(1).map(|v| v.to_string()).collect();
            args.join(", ")
        })
        .collect();
    out.sort();
    out
}

/// The archived `seen` rows in scan order, as canonical strings.
fn archived_rows<H: Population>(sim: &mut H, addr: &Addr) -> Vec<String> {
    let now = sim.now();
    sim.node_mut(addr)
        .history_scan("seen", Time::ZERO, now, now)
        .expect("archiving is on")
        .iter()
        .map(|r| format!("{} [{:?}..{:?}]", r.tuple, r.inserted_at, r.dropped_at))
        .collect()
}

/// One faulted life: incident, restart (recovering whatever the fault
/// left durable), then the archive scan and the forensic answer.
fn faulted_run<H: Population>(sim: &mut H, plan: Option<FaultPlan>) -> (Vec<String>, Vec<String>) {
    let origin = sim.add_node_with("a", durable_config(plan));
    sim.install(&origin, APP).expect("app installs");
    incident(sim, &origin);
    sim.restart(&origin).expect("restart reinstalls");
    let rows = archived_rows(sim, &origin);
    sim.install(&origin, DEPLOY_FORENSICS)
        .expect("query installs");
    (rows, ask(sim, &origin))
}

/// The no-crash reference: same incident, no restart.
fn baseline(seed: u64) -> (Vec<String>, Vec<String>) {
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
    let origin = sim.add_node_with("a", durable_config(None));
    sim.install(&origin, APP).expect("app installs");
    incident(&mut sim, &origin);
    let rows = archived_rows(&mut sim, &origin);
    sim.install(&origin, DEPLOY_FORENSICS)
        .expect("query installs");
    let ans = ask(&mut sim, &origin);
    (rows, ans)
}

#[test]
fn restart_without_durability_loses_all_history() {
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 3);
    let origin = sim.add_node_with("a", forensic_config());
    sim.install(&origin, APP).expect("app installs");
    incident(&mut sim, &origin);
    assert!(!archived_rows(&mut sim, &origin).is_empty());
    sim.restart(&origin).expect("restart reinstalls");
    assert!(
        archived_rows(&mut sim, &origin).is_empty(),
        "no durable store: the archive must come back empty"
    );
    // The reborn node still computes: a fresh ping lands.
    sim.node_mut(&origin).watch("seen");
    sim.inject(
        &origin,
        Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(99)]),
    );
    assert_eq!(sim.node_mut(&origin).take_watched("seen").len(), 1);
}

#[test]
fn unfaulted_restart_recovers_full_history_bit_identically() {
    let seed = 7;
    let (want_rows, want_ans) = baseline(seed);
    assert_eq!(want_ans.len(), 3, "three pings reconstruct: {want_ans:?}");

    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
    let (rows, ans) = faulted_run(&mut sim, None);
    assert_eq!(rows, want_rows, "recovery replays the full log");
    assert_eq!(ans, want_ans, "past() over recovered history matches");

    // The second incarnation reports its recovery through sysStat.
    let origin = Addr::new("a");
    let stats = sim
        .node_mut(&origin)
        .catalog_mut()
        .durable_stats()
        .expect("durability is on");
    assert_eq!(stats.boots, 2, "fresh boot + restart");
    assert!(stats.recovered_segments >= 1);
    let now = sim.now();
    sim.node_mut(&origin).refresh_introspection(now);
    let sys = sim.node_mut(&origin).table_scan("sysStat", now);
    assert!(
        sys.iter().any(|t| t.to_string().contains("durable.boots")),
        "durable.* rows surface in sysStat: {sys:?}"
    );
}

/// The headline: crash at ANY seeded fault point → recovery yields a
/// clean prefix of the sealed history, identically on every engine.
#[test]
fn crash_at_any_fault_point_recovers_a_clean_prefix() {
    let seed = 7;
    let (want_rows, want_ans) = baseline(seed);

    for fault_seed in 0..12u64 {
        let plan = FaultPlan::seeded(fault_seed, 12);
        let crashy = matches!(
            plan.faults[0],
            Fault::CrashBeforeAppend { .. }
                | Fault::TornAppend { .. }
                | Fault::CrashAfterBarrier { .. }
        );

        let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
        let (rows, ans) = faulted_run(&mut sim, Some(plan.clone()));

        if crashy {
            // Everything before the crash point survives in order;
            // nothing after it leaks through.
            assert_eq!(
                rows,
                want_rows[..rows.len()],
                "clean prefix (fault_seed={fault_seed}, {plan:?})"
            );
        } else {
            // Silent corruption: the flipped frame is quarantined, the
            // rest survive — still strictly a subset, still no panic.
            assert!(
                rows.iter().all(|r| want_rows.contains(r)),
                "subset (fault_seed={fault_seed})"
            );
        }
        // The forensic answer over recovered history is exactly the
        // baseline answer restricted to the recovered rows.
        assert!(
            ans.iter().all(|a| want_ans.contains(a)),
            "answers come only from real history (fault_seed={fault_seed})"
        );
        assert_eq!(
            ans.len(),
            rows.len(),
            "every recovered row answers (fault_seed={fault_seed})"
        );

        // Bit-identity across engines and shard counts.
        for shards in [1usize, 2, 4] {
            let mut par =
                ParallelHarness::new(SimConfig::default(), forensic_config(), seed, shards);
            let (prows, pans) = faulted_run(&mut par, Some(plan.clone()));
            assert_eq!(prows, rows, "rows diverged at {shards} shards");
            assert_eq!(pans, ans, "answers diverged at {shards} shards");
        }
    }
}

#[test]
fn bit_flip_is_quarantined_and_counted() {
    let seed = 7;
    let plan = FaultPlan::new(vec![Fault::FlipBit {
        append: 0,
        byte: 17,
        bit: 3,
    }]);
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
    let (rows, _) = faulted_run(&mut sim, Some(plan));
    let (want_rows, _) = baseline(seed);
    assert!(rows.len() < want_rows.len(), "the flipped frame is gone");
    let origin = Addr::new("a");
    let stats = sim
        .node_mut(&origin)
        .catalog_mut()
        .durable_stats()
        .expect("durability is on");
    assert!(stats.quarantined >= 1, "corruption is counted: {stats:?}");
}

#[test]
fn collector_refetches_after_origin_restart_and_clears_p2s902() {
    let seed = 12;
    let (_, want_ans) = baseline(seed);

    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
    let origin = sim.add_node_with("a", durable_config(None));
    let coll = sim.add_node_with("coll", collector_config());
    sim.install(&origin, APP).expect("app installs");
    incident(&mut sim, &origin);
    sim.install(&coll, DEPLOY_FORENSICS)
        .expect("query installs");
    sim.node_mut(&coll).ship_add_peer(origin.clone());

    // Origin is down: the pull times out into a typed failure.
    sim.crash(&origin);
    let got = ask(&mut sim, &coll);
    sim.run_for(TimeDelta::from_secs(30));
    assert!(got.is_empty(), "no history while the origin is down");
    assert!(
        sim.node(&coll)
            .ship_failures()
            .any(|f| matches!(f, ShipFailure::PeerUnreachable { .. })),
        "typed P2S902 while down"
    );

    // Restart: archived history comes back from the durable log, and
    // the collector's next ask re-fetches it successfully.
    sim.restart(&origin).expect("restart reinstalls");
    let got = ask(&mut sim, &coll);
    assert_eq!(got, want_ans, "re-fetch serves recovered history");
    assert!(sim.node(&coll).ship_covered(&origin, "seen"));
    assert!(
        !sim.node(&coll)
            .ship_failures()
            .any(|f| matches!(f, ShipFailure::PeerUnreachable { .. })),
        "P2S902 cleared once the peer answers again"
    );
}

#[test]
fn subscribe_mode_survives_restart_via_generation_bump() {
    let seed = 5;
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), seed);
    let origin = sim.add_node_with("a", durable_config(None));
    let coll = sim.add_node_with("coll", collector_config());
    sim.install(&origin, APP).expect("app installs");
    sim.node_mut(&origin).ship_subscribe(coll.clone());
    incident(&mut sim, &origin);
    let applied_before = sim.node(&coll).ship_stats().announces_applied;
    assert!(applied_before >= 1, "announces flowed before the crash");

    // Crash + restart. The subscription is soft state, so it is
    // re-established; the boot-counter generation bump guarantees the
    // new announces outrank every pre-crash one at the collector.
    sim.crash(&origin);
    sim.run_for(TimeDelta::from_secs(5));
    sim.restart(&origin).expect("restart reinstalls");
    sim.node_mut(&origin).ship_subscribe(coll.clone());
    sim.run_until(Time::from_secs(400));
    let t = sim.now();
    sim.node_mut(&origin).trace_gc(t);
    sim.run_for(TimeDelta::from_secs(1));
    assert!(
        sim.node(&coll).ship_stats().announces_applied > applied_before,
        "post-restart announces are applied, not dropped as stale"
    );

    sim.install(&coll, DEPLOY_FORENSICS)
        .expect("query installs");
    let got = ask(&mut sim, &coll);
    let (_, want_ans) = baseline(seed);
    assert_eq!(got, want_ans, "streamed recovered history answers");
}

#[test]
fn delta_announces_ship_only_fresh_segments() {
    // Disable compaction so the sealed list is append-only: after the
    // first full announce, later sweeps must ship deltas.
    let mut archive = p2ql::core::ArchiveMode::default();
    archive.config.compact_min_bytes = 0;
    let cfg = NodeConfig {
        archive: Some(archive),
        ..forensic_config()
    };
    let mut sim = SimHarness::new(SimConfig::default(), cfg.clone(), 9);
    let origin = sim.add_node_with("a", cfg);
    let coll = sim.add_node_with("coll", collector_config());
    sim.install(&origin, APP).expect("app installs");
    sim.node_mut(&origin).ship_subscribe(coll.clone());

    // First batch: sealed by the sweep at 100 s, announced in full.
    incident(&mut sim, &origin);
    let full_only = sim.node(&origin).ship_stats().delta_segments;

    // Second batch: one new ping, one new sealed epoch — a delta.
    sim.run_until(Time::from_secs(320));
    sim.inject(
        &origin,
        Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(77)]),
    );
    sim.run_until(Time::from_secs(400));
    let t = sim.now();
    sim.node_mut(&origin).trace_gc(t);
    sim.run_for(TimeDelta::from_secs(1));

    let stats = sim.node(&origin).ship_stats();
    assert!(
        stats.delta_segments > full_only,
        "fresh sealed epochs ride a delta announce: {stats:?}"
    );

    // And the collector's answer still covers all four pings.
    sim.install(&coll, DEPLOY_FORENSICS)
        .expect("query installs");
    sim.node_mut(&coll).watch("hist");
    sim.inject(
        &coll,
        Tuple::new(
            "probe",
            [Value::Addr(coll.clone()), Value::Int(0), Value::Int(330)],
        ),
    );
    sim.run_for(TimeDelta::from_secs(1));
    let got = sim.node_mut(&coll).take_watched("hist");
    assert_eq!(got.len(), 4, "all pings reconstruct via deltas: {got:?}");
}
