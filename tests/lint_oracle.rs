//! The flow analyzer's static bounds dominate what the runtime lint
//! oracle actually measures (DESIGN.md §2.13).
//!
//! With `NodeConfig::lint` on, every node tags local deltas with their
//! cascade root and depth and publishes per-root-relation maxima. These
//! tests run the Chord overlay plus §3 monitors and assert, at 1 and 4
//! shards, that no measured cascade depth or per-episode output count
//! ever exceeds the static `depth` / `amplification` bound the deep
//! analysis derives for that root relation. Roots the analysis calls
//! `Unbounded` (anything reaching the lookup recursion) are skipped —
//! there is no finite bound to compare against.

use p2ql::analysis::{flow_report, AnalysisCtx, Bound, FlowReport};
use p2ql::chord::{build_ring, chord_program, ChordConfig};
use p2ql::core::{NodeConfig, ParallelHarness, Population, SimHarness};
use p2ql::monitor::{ordering, oscillation, ring, watchpoints};
use p2ql::overlog::parse_program;
use p2ql::types::TimeDelta;

fn lint_config() -> NodeConfig {
    NodeConfig {
        lint: true,
        ..Default::default()
    }
}

/// Static flow report over exactly the sources the scenario installs.
fn static_bounds(sources: &[String]) -> FlowReport {
    let programs: Vec<_> = sources
        .iter()
        .map(|s| parse_program(s).expect("shipped program parses"))
        .collect();
    let refs: Vec<&_> = programs.iter().collect();
    flow_report(&refs, &AnalysisCtx::default())
}

/// Drive the ring + monitors scenario, then check every node's measured
/// maxima against the static bounds.
fn assert_measured_within_static<H: Population>(sim: &mut H, label: &str) {
    let monitors = [
        ring::active_probe_program(9),
        ring::passive_check_program(),
        ordering::opportunistic_program(),
        oscillation::full_program(),
        watchpoints::suite_program(10),
    ];
    let topo = build_ring(sim, 6, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(120));
    for a in topo.addrs.clone() {
        for m in &monitors {
            sim.install(&a, m).expect("monitor installs");
        }
    }
    sim.run_for(TimeDelta::from_secs(180));

    let mut sources = vec![chord_program(&ChordConfig::default())];
    sources.extend(monitors.iter().cloned());
    let report = static_bounds(&sources);

    let mut checked = 0usize;
    let mut skipped = 0usize;
    for a in topo.addrs.clone() {
        let measured = sim.node_mut(&a).lint_maxima();
        assert!(
            !measured.is_empty(),
            "[{label}] lint oracle measured nothing at {a}"
        );
        for (rel, depth, outputs) in measured {
            match report.depth.get(&rel) {
                Some(Bound::Finite(d)) => {
                    checked += 1;
                    assert!(
                        depth <= *d,
                        "[{label}] {a}: measured cascade depth {depth} from root \
                         '{rel}' exceeds the static bound {d}"
                    );
                }
                Some(Bound::Unbounded) => skipped += 1,
                // A relation outside the trigger graph cannot cascade.
                None => assert_eq!(
                    depth, 0,
                    "[{label}] {a}: root '{rel}' is not in the trigger graph \
                     yet cascaded to depth {depth}"
                ),
            }
            match report.amplification.get(&rel) {
                Some(Bound::Finite(b)) => assert!(
                    outputs <= *b,
                    "[{label}] {a}: episode from root '{rel}' derived {outputs} \
                     tuples, above the static amplification bound {b}"
                ),
                Some(Bound::Unbounded) => {}
                None => assert_eq!(
                    outputs, 0,
                    "[{label}] {a}: root '{rel}' outside the trigger graph \
                     derived {outputs} tuples"
                ),
            }
        }
    }
    assert!(
        checked > 0,
        "[{label}] no finite-bound root was ever measured \
         (checked={checked}, skipped={skipped})"
    );
}

#[test]
fn measured_cascades_stay_within_static_bounds_sequential() {
    let mut sim = SimHarness::new(Default::default(), lint_config(), 90);
    assert_measured_within_static(&mut sim, "1 shard");
}

#[test]
fn measured_cascades_stay_within_static_bounds_sharded() {
    let mut sim = ParallelHarness::new(Default::default(), lint_config(), 90, 4);
    assert_measured_within_static(&mut sim, "4 shards");
}

/// Exact-bound sanity on a closed scenario: a periodic broadcast over a
/// bounded peer table. Static says amp(periodic) = rows·(1+1) and depth
/// 2; the measured episode must match the real row count, under both.
#[test]
fn linear_chain_measures_at_most_the_declared_bound() {
    let mut sim = SimHarness::new(Default::default(), lint_config(), 7);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let src = "materialize(peer, infinity, 8, keys(1, 2)).
               hb1 beat@P(N, E) :- periodic@N(E, 5), peer@N(P).
               hb2 seen@N(F) :- beat@N(F, E).
               materialize(seen, infinity, infinity, keys(1, 2)).";
    sim.install(&a, src).expect("installs");
    sim.install(&b, src).expect("installs");
    sim.install(&a, &format!("peer@\"{a}\"(\"{b}\").\n"))
        .expect("fact installs");
    sim.run_for(TimeDelta::from_secs(30));

    let program = parse_program(src).expect("parses");
    let report = flow_report(&[&program], &AnalysisCtx::default());
    assert_eq!(
        report.amplification.get("periodic"),
        Some(&Bound::Finite(16))
    );
    assert_eq!(report.depth.get("periodic"), Some(&Bound::Finite(2)));

    let measured = sim.node_mut(&a).lint_maxima();
    let periodic = measured
        .iter()
        .find(|(rel, _, _)| rel == "periodic")
        .expect("periodic episodes measured");
    assert!(periodic.1 <= 2, "depth {} > 2", periodic.1);
    assert!(periodic.2 <= 16, "outputs {} > 16", periodic.2);
    // And the receiver measured the re-rooted `beat` arrivals.
    let beat = sim
        .node_mut(&b)
        .lint_maxima()
        .into_iter()
        .find(|(rel, _, _)| rel == "beat")
        .expect("beat arrivals re-root on the receiver");
    assert!(beat.1 <= 1, "beat depth {} > 1", beat.1);
    assert!(beat.2 <= 1, "beat outputs {} > 1", beat.2);
}

/// The oracle is bookkeeping only: with lint on and off, the same
/// scenario produces identical protocol state and network counters.
#[test]
fn lint_oracle_is_observably_inert() {
    let fingerprint = |lint: bool| {
        let config = NodeConfig {
            lint,
            ..Default::default()
        };
        let mut sim = SimHarness::new(Default::default(), config, 90);
        let topo = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(150));
        let mut out = String::new();
        for a in topo.addrs.clone() {
            let m = sim.node_mut(&a).metrics().clone();
            out.push_str(&format!(
                "{a}: dispatched={} firings={} sent={}\n",
                m.tuples_dispatched, m.strand_firings, m.tuples_sent
            ));
            let now = sim.now();
            let mut rows: Vec<String> = sim
                .node_mut(&a)
                .table_scan("bestSucc", now)
                .iter()
                .map(|t| t.to_string())
                .collect();
            rows.sort();
            out.push_str(&rows.join("\n"));
            out.push('\n');
        }
        out
    };
    assert_eq!(fingerprint(false), fingerprint(true));
}
