//! Segment shipping, end to end (ISSUE 8 acceptance criteria).
//!
//! The tentpole claim of DESIGN.md §2.12: a deployment-provider
//! `past()` on a collector node answers **byte-identically** whether
//! the history it ranges over was
//!
//! * **born local** — the origin answers for itself,
//! * **fetched** — pull mode: the collector's trigger stages while
//!   sealed segments are requested on demand, or
//! * **streamed** — subscribe mode: origins push segments at every GC
//!   sweep before anyone asks,
//!
//! and identically under the sequential and sharded engines at every
//! shard count tried. Alongside: export → wire → import bit-identity
//! under proptest, hostile bytes (truncated / bit-flipped frames)
//! decode to typed errors without panicking, and remote-fetch failures
//! surface as typed, queryable diagnostics.

use p2ql::core::{NodeConfig, ParallelHarness, Population, ShipFailure, SimHarness};
use p2ql::net::ship::{chunk_payload, Reassembly};
use p2ql::net::SimConfig;
use p2ql::planner::PlanOpts;
use p2ql::store::Segment;
use p2ql::types::{Time, Tuple, Value};
use proptest::prelude::*;

const APP: &str = r#"
materialize(seen, 5, 32, keys(1, 2)).
r1 seen@N(X) :- ping@N(X).
"#;

/// The deployment-wide forensic question. `O` is free: it binds to
/// each archived row's own location, whichever origin shipped it.
const DEPLOY_FORENSICS: &str = r#"
materialize(seen, 5, 32, keys(1, 2)).
f1 hist@N(O, S) :- probe@N(T0, T1), past@N("seen", T0, T1, O, S).
"#;

fn forensic_config() -> NodeConfig {
    NodeConfig {
        stagger_timers: false,
        ..NodeConfig::forensic()
    }
}

/// Same node template, but `past()` lowers to the deployment provider.
fn collector_config() -> NodeConfig {
    NodeConfig {
        plan: PlanOpts {
            history: p2ql::planner::HistoryProvider::Deployment,
            ..PlanOpts::default()
        },
        ..forensic_config()
    }
}

/// Drive the §3-style incident on `origin`: three pings inside
/// [0s, 40s], then outlive the 5 s row lifetime with GC sweeps along
/// the way (the sweeps are also what streams segments in subscribe
/// mode).
fn incident<H: Population>(sim: &mut H, origin: &p2ql::types::Addr) {
    for (t, x) in [(10u64, 7i64), (20, 11), (30, 42)] {
        sim.run_until(Time::from_secs(t));
        sim.inject(
            origin,
            Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(x)]),
        );
    }
    // Periodic GC sweeps are the deployed shape (cf. tests/forensics.rs);
    // in subscribe mode each sweep is also the announce pump.
    for t in [100u64, 200, 300] {
        sim.run_until(Time::from_secs(t));
        sim.node_mut(origin).trace_gc(Time::from_secs(t));
    }
    sim.run_until(Time::from_secs(301));
    let now = sim.now();
    assert!(
        sim.node_mut(origin).table_scan("seen", now).is_empty(),
        "live rows must be gone before anyone asks"
    );
}

/// Ask `asker` the forensic question and return canonical answers with
/// the head's location stripped (the flavors answer from different
/// nodes; the *content* must agree).
fn ask<H: Population>(sim: &mut H, asker: &p2ql::types::Addr) -> Vec<String> {
    sim.node_mut(asker).watch("hist");
    sim.inject(
        asker,
        Tuple::new(
            "probe",
            [Value::Addr(asker.clone()), Value::Int(0), Value::Int(40)],
        ),
    );
    // Pull mode stages the trigger behind a fetch round-trip; give the
    // request/reply envelopes their network latency. Local and
    // streamed flavors answer at the inject instant — running on is a
    // no-op for them.
    sim.run_for(p2ql::types::TimeDelta::from_secs(1));
    let mut out: Vec<String> = sim
        .node_mut(asker)
        .take_watched("hist")
        .into_iter()
        .map(|(_, t)| {
            let args: Vec<String> = t.values().iter().skip(1).map(|v| v.to_string()).collect();
            args.join(", ")
        })
        .collect();
    out.sort();
    out
}

#[derive(Clone, Copy)]
enum Flavor {
    Local,
    Fetched,
    Streamed,
}

/// One full scenario under one engine: incident on the origin, then
/// the question, answered per flavor.
fn scenario<H: Population>(sim: &mut H, flavor: Flavor) -> Vec<String> {
    let origin = sim.add_node_with("a", forensic_config());
    sim.install(&origin, APP).expect("app installs");
    match flavor {
        Flavor::Local => {
            incident(sim, &origin);
            sim.install(&origin, DEPLOY_FORENSICS)
                .expect("query installs");
            ask(sim, &origin)
        }
        Flavor::Fetched => {
            let coll = sim.add_node_with("coll", collector_config());
            incident(sim, &origin);
            sim.install(&coll, DEPLOY_FORENSICS)
                .expect("query installs");
            sim.node_mut(&coll).ship_add_peer(origin.clone());
            let got = ask(sim, &coll);
            assert!(
                sim.node(&coll).ship_covered(&origin, "seen"),
                "pull mode must have resolved coverage"
            );
            assert!(sim.node(&coll).ship_stats().fetches_completed >= 1);
            got
        }
        Flavor::Streamed => {
            let coll = sim.add_node_with("coll", collector_config());
            sim.node_mut(&origin).ship_subscribe(coll.clone());
            incident(sim, &origin);
            sim.install(&coll, DEPLOY_FORENSICS)
                .expect("query installs");
            let got = ask(sim, &coll);
            assert!(
                sim.node(&coll).ship_stats().announces_applied >= 1,
                "subscribe mode must have imported via announces"
            );
            got
        }
    }
}

#[test]
fn fetched_and_streamed_match_local_at_every_shard_count() {
    let seed = 7;
    let want = scenario(
        &mut SimHarness::new(SimConfig::default(), forensic_config(), seed),
        Flavor::Local,
    );
    assert_eq!(want.len(), 3, "three pings reconstruct: {want:?}");
    for flavor in [Flavor::Local, Flavor::Fetched, Flavor::Streamed] {
        let got = scenario(
            &mut SimHarness::new(SimConfig::default(), forensic_config(), seed),
            flavor,
        );
        assert_eq!(got, want, "sequential engine diverged");
        for shards in [1usize, 2, 4] {
            let mut sim =
                ParallelHarness::new(SimConfig::default(), forensic_config(), seed, shards);
            let got = scenario(&mut sim, flavor);
            assert_eq!(got, want, "diverged at {shards} shards");
        }
    }
}

#[test]
fn nack_is_a_typed_queryable_no_history_answer() {
    // The peer exists and responds, but archives nothing: pull mode
    // must resolve with an authoritative "no history" — a typed
    // P2S901 failure, coverage marked, and the trigger released (the
    // query answers from whatever else is covered, here nothing).
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 11);
    let bare = sim.add_node_with("bare", NodeConfig::default());
    let coll = sim.add_node_with("coll", collector_config());
    sim.run_until(Time::from_secs(1));
    sim.install(&coll, DEPLOY_FORENSICS)
        .expect("query installs");
    sim.node_mut(&coll).ship_add_peer(bare.clone());
    let got = ask(&mut sim, &coll);
    assert!(got.is_empty(), "no history anywhere: {got:?}");
    assert!(sim.node(&coll).ship_covered(&bare, "seen"));
    let fails: Vec<String> = sim
        .node(&coll)
        .ship_failures()
        .map(|f| f.code().to_string())
        .collect();
    assert_eq!(fails, vec!["P2S901".to_string()], "typed NoHistory");
    assert!(matches!(
        sim.node(&coll).ship_failures().next(),
        Some(ShipFailure::NoHistory { .. })
    ));
    // And it is queryable: the failure surfaces as a sysDiag row.
    let now = sim.now();
    sim.node_mut(&coll).refresh_introspection(now);
    let diags = sim.node_mut(&coll).table_scan("sysDiag", now);
    assert!(
        diags
            .iter()
            .any(|t| t.values().iter().any(|v| v.to_string().contains("P2S901"))),
        "P2S901 must appear in sysDiag: {diags:?}"
    );
}

#[test]
fn unreachable_peer_times_out_into_a_typed_failure() {
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 12);
    let origin = sim.add_node_with("a", forensic_config());
    let coll = sim.add_node_with("coll", collector_config());
    sim.install(&origin, APP).expect("app installs");
    sim.run_until(Time::from_secs(1));
    sim.install(&coll, DEPLOY_FORENSICS)
        .expect("query installs");
    sim.node_mut(&coll).ship_add_peer(origin.clone());
    sim.crash(&origin);
    sim.node_mut(&coll).watch("hist");
    sim.inject(
        &coll,
        Tuple::new(
            "probe",
            [Value::Addr(coll.clone()), Value::Int(0), Value::Int(40)],
        ),
    );
    // Ride out the retry schedule (2 s timeout, 2 retries).
    sim.run_for(p2ql::types::TimeDelta::from_secs(30));
    let stats = sim.node(&coll).ship_stats();
    assert!(stats.retries >= 1, "resends happened: {stats:?}");
    assert!(stats.timeouts >= 1, "gave up: {stats:?}");
    assert!(
        sim.node(&coll)
            .ship_failures()
            .any(|f| matches!(f, ShipFailure::PeerUnreachable { .. }) && f.code() == "P2S902"),
        "typed PeerUnreachable"
    );
    assert_eq!(
        stats.triggers_released, stats.triggers_staged,
        "the staged trigger must be released, not wedged"
    );
    assert!(
        !sim.node(&coll).ship_covered(&origin, "seen"),
        "an unreachable peer is NOT coverage — a later ask retries"
    );
}

#[test]
fn hostile_segment_bytes_never_panic() {
    // Build a real exported segment, then attack it: every truncation
    // and a sweep of single-bit flips must come back as typed
    // `SegmentError`s (or a still-valid parse) — never a panic, never
    // an import of garbage under the wrong relation.
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 13);
    let origin = sim.add_node_with("a", forensic_config());
    sim.install(&origin, APP).expect("app installs");
    incident(&mut sim, &origin);
    let now = sim.now();
    let frames = sim
        .node_mut(&origin)
        .catalog_mut()
        .export_history("seen", now)
        .expect("archiving is on");
    assert!(!frames.is_empty());
    let bytes = frames[0].as_bytes().to_vec();
    let good = Segment::from_bytes(&bytes).expect("untouched frame round-trips");
    assert_eq!(good.relation(), "seen");

    for len in 0..bytes.len() {
        let _ = Segment::from_bytes(&bytes[..len]);
    }
    for i in 0..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut evil = bytes.clone();
            evil[i] ^= 1 << bit;
            if let Ok(seg) = Segment::from_bytes(&evil) {
                // A flip that survives parsing must not have moved the
                // frame to another relation unnoticed by the importer's
                // relation check path.
                let _ = seg.relation();
            }
        }
    }
}

#[test]
fn export_wire_import_is_bit_identical() {
    // The full pipeline a shipped segment travels — export, encode,
    // chunk, reassemble, decode, import — reproduces the origin's
    // archive scan exactly, at every chunk size tried (1 byte forces
    // maximal fragmentation).
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 17);
    let origin = sim.add_node_with("a", forensic_config());
    let coll = sim.add_node_with("coll", forensic_config());
    sim.install(&origin, APP).expect("app installs");
    incident(&mut sim, &origin);
    let now = sim.now();
    let want = sim
        .node_mut(&origin)
        .history_scan("seen", Time::ZERO, now, now)
        .expect("origin scan");
    assert!(!want.is_empty());
    let frames = sim
        .node_mut(&origin)
        .catalog_mut()
        .export_history("seen", now)
        .expect("archiving is on");

    for chunk_bytes in [1usize, 7, 64, 1 << 20] {
        let encoded: Vec<Vec<u8>> = frames.iter().map(|s| s.as_bytes().to_vec()).collect();
        let batch = p2ql::net::ship::encode_batch(&encoded);
        let parts = chunk_payload(&batch, chunk_bytes);
        let mut rx = Reassembly::new();
        let chunks = parts.len() as u32;
        let mut payload = None;
        for (i, part) in parts.iter().enumerate() {
            let shipped = p2ql::net::ShipMsg::Reply {
                req_id: 1,
                relation: "seen".into(),
                chunk: i as u32,
                chunks,
                watermark: 0,
                oldest_lo: 0,
                bytes: part.clone(),
            };
            let p2ql::net::ShipMsg::Reply { bytes, .. } = &shipped else {
                unreachable!()
            };
            if let Some(done) = rx.offer(i as u32, chunks, bytes.clone()).expect("in-order") {
                payload = Some(done);
            }
        }
        let payload = payload.expect("reassembly completes");
        assert_eq!(payload, batch, "wire trip is bit-identical");
        let segs: Vec<Segment> = p2ql::net::ship::decode_batch(&payload)
            .expect("batch decodes")
            .iter()
            .map(|b| Segment::from_bytes(b).expect("frame decodes"))
            .collect();
        sim.node_mut(&coll)
            .catalog_mut()
            .import_history("a", "seen", segs);
        let got = sim
            .node_mut(&coll)
            .deployment_history_scan("seen", Time::ZERO, now, now)
            .expect("collector scan");
        assert_eq!(
            got, want,
            "imported scan == origin scan (chunk={chunk_bytes})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Export → wire → import is bit-identical for arbitrary row
    /// values, row counts, and chunk sizes: the collector's scan of the
    /// imported history reproduces the origin's own archive scan
    /// exactly, however awkwardly the frames were fragmented in flight.
    #[test]
    fn prop_export_wire_import_roundtrip(
        vals in proptest::collection::vec(any::<i64>(), 1..6),
        chunk_bytes in 1u64..2048,
    ) {
        let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 19);
        let origin = sim.add_node_with("a", forensic_config());
        sim.install(&origin, APP).expect("app installs");
        for (i, v) in vals.iter().enumerate() {
            sim.run_until(Time::from_secs(10 + 10 * i as u64));
            sim.inject(
                &origin,
                Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(*v)]),
            );
        }
        let settle = Time::from_secs(10 + 10 * vals.len() as u64 + 60);
        sim.run_until(settle);
        sim.node_mut(&origin).trace_gc(settle);
        let now = sim.now();
        let want = sim
            .node_mut(&origin)
            .history_scan("seen", Time::ZERO, now, now)
            .expect("origin scan");
        let frames = sim
            .node_mut(&origin)
            .catalog_mut()
            .export_history("seen", now)
            .expect("archiving is on");

        let encoded: Vec<Vec<u8>> = frames.iter().map(|f| f.as_bytes().to_vec()).collect();
        let batch = p2ql::net::ship::encode_batch(&encoded);
        let parts = chunk_payload(&batch, chunk_bytes as usize);
        let mut rx = Reassembly::new();
        let chunks = parts.len() as u32;
        let mut payload = None;
        for (i, part) in parts.iter().enumerate() {
            if let Some(done) = rx.offer(i as u32, chunks, part.clone()).expect("in-order") {
                payload = Some(done);
            }
        }
        let payload = payload.expect("reassembly completes");
        prop_assert_eq!(&payload, &batch, "wire trip is bit-identical");
        let segs: Vec<Segment> = p2ql::net::ship::decode_batch(&payload)
            .expect("batch decodes")
            .iter()
            .map(|b| Segment::from_bytes(b).expect("frame decodes"))
            .collect();
        let coll = sim.add_node_with("coll", forensic_config());
        sim.node_mut(&coll)
            .catalog_mut()
            .import_history("a", "seen", segs);
        let got = sim
            .node_mut(&coll)
            .deployment_history_scan("seen", Time::ZERO, now, now)
            .expect("collector scan");
        prop_assert_eq!(got, want, "imported scan == origin scan");
    }
}
