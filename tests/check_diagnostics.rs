//! Golden diagnostics for the bad-program corpus.
//!
//! Every file under `tests/bad_programs/` is a small OverLog program
//! broken in one deliberate way. Each goes through the full `p2ql
//! check` pipeline and its rendered diagnostics — codes, `file:line:col`
//! positions, caret snippets, help lines — are compared against the
//! checked-in snapshot under `tests/bad_programs/snapshots/`. A diff
//! means the analyzer's user-facing output changed: either a bug, or an
//! intentional diagnostics change that must be reviewed and re-recorded
//! with
//!
//! ```text
//! scripts/update_snapshots.sh      # or: SNAPSHOT_REGEN=1 cargo test --test check_diagnostics
//! ```

use p2ql::analysis::{check_sources_with, AnalysisCtx, CheckOpts};
use p2ql::overlog::SourceUnit;
use std::path::PathBuf;

/// Files whose only findings are notes: `p2ql check` exits 0 on them
/// (the paper's own idioms trip these), every other corpus file fails.
/// `bounded_guarded_cycle.olg` is recursive on purpose — the deep pass
/// must prove it terminates (a P2N604 note), not call it a storm.
const NOTES_ONLY: &[&str] = &["delete_cycle.olg", "bounded_guarded_cycle.olg"];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/bad_programs")
}

fn render(name: &str, src: &str) -> (String, bool) {
    let units = [SourceUnit { name, src }];
    // Deep: the corpus covers the flow analyzer too (P2W601/P2W602/
    // P2E603 and the bounded-recursion notes).
    let report = check_sources_with(&units, &AnalysisCtx::default(), &CheckOpts { deep: true });
    (report.diags.render(&units), report.passes())
}

#[test]
fn bad_programs_match_golden_diagnostics() {
    let dir = corpus_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("olg"))
                .then(|| p.file_name().unwrap().to_str().unwrap().to_string())
        })
        .collect();
    names.sort();
    assert!(
        names.len() >= 15,
        "expected a corpus of broken programs, found {}",
        names.len()
    );

    for name in &names {
        let src = std::fs::read_to_string(dir.join(name)).unwrap();
        let (rendered, passes) = render(name, &src);
        assert!(
            !rendered.is_empty(),
            "{name}: a bad program must produce diagnostics"
        );
        assert_eq!(
            passes,
            NOTES_ONLY.contains(&name.as_str()),
            "{name}: exit contract drifted (notes pass, warnings and errors fail):\n{rendered}"
        );

        let snap = dir.join("snapshots").join(format!("{name}.txt"));
        if std::env::var_os("SNAPSHOT_REGEN").is_some() {
            std::fs::create_dir_all(snap.parent().unwrap()).unwrap();
            std::fs::write(&snap, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&snap).unwrap_or_else(|e| {
            panic!(
                "{name}: cannot read snapshot {}: {e}\nrun scripts/update_snapshots.sh to record it",
                snap.display()
            )
        });
        assert!(
            rendered == golden,
            "{name}: diagnostics drifted from {}.\n--- golden:\n{golden}\n--- actual:\n{rendered}\n\
             If the change is intentional, re-record with scripts/update_snapshots.sh and review \
             the diff.",
            snap.display()
        );
    }
}

/// The ISSUE's acceptance example, asserted structurally (the golden
/// file covers the exact text): a typo'd relation gets a warning with
/// the right position, a caret under the offending predicate, and a
/// did-you-mean hint.
#[test]
fn typo_relation_has_position_caret_and_hint() {
    let src = std::fs::read_to_string(corpus_dir().join("typo_relation.olg")).unwrap();
    let (rendered, passes) = render("typo_relation.olg", &src);
    assert!(!passes, "a typo'd relation must fail the check");
    assert!(
        rendered.contains("warning[P2W301]"),
        "missing P2W301:\n{rendered}"
    );
    let line = 1 + src.lines().position(|l| l.contains("bestSucc2@")).unwrap();
    let col = 1 + src
        .lines()
        .find(|l| l.contains("bestSucc2@"))
        .unwrap()
        .find("bestSucc2")
        .unwrap();
    assert!(
        rendered.contains(&format!("--> typo_relation.olg:{line}:{col}")),
        "wrong position (want {line}:{col}):\n{rendered}"
    );
    assert!(
        rendered.contains("^^^"),
        "missing caret snippet:\n{rendered}"
    );
    assert!(
        rendered.contains("did you mean `bestSucc`?"),
        "missing did-you-mean hint:\n{rendered}"
    );
}
