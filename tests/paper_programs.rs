//! Paper fidelity: every OverLog program in the repository — Chord and
//! all Section 3 monitors — must compile through the full front end
//! (parse + validate) and plan into strands, with the trigger structure
//! each one's semantics requires.

use p2ql::chord::{chord_program, node_facts, ChordConfig};
use p2ql::monitor::{consistency, ordering, oscillation, profiling, ring, snapshot, watchpoints};
use p2ql::planner::{compile_program, Trigger};
use p2ql::types::Addr;
use std::collections::HashSet;

/// Compile + plan against a catalog that already has Chord's tables
/// (monitors install on-line, after the application).
fn plan(src: &str) -> p2ql::planner::CompiledProgram {
    plan_with(src, &[])
}

/// Like [`plan`], with extra already-materialized tables (programs that
/// install after other monitor programs, e.g. the snapshot rules after
/// the back-pointer rules).
fn plan_with(src: &str, extra_tables: &[&str]) -> p2ql::planner::CompiledProgram {
    let mut chord_tables: HashSet<String> = {
        let chord = p2ql::overlog::compile(&chord_program(&ChordConfig::default())).unwrap();
        chord
            .materializations()
            .map(|m| m.table.clone())
            .chain(["ruleExec".to_string(), "tupleTable".to_string()])
            .collect()
    };
    chord_tables.extend(extra_tables.iter().map(|s| s.to_string()));
    let prog = p2ql::overlog::compile(src)
        .unwrap_or_else(|e| panic!("front end rejected program: {e}\n{src}"));
    compile_program(&prog, &chord_tables)
        .unwrap_or_else(|e| panic!("planner rejected program: {e}\n{src}"))
}

#[test]
fn chord_program_plans() {
    let p = plan(&chord_program(&ChordConfig::default()));
    // Five periodic drivers: join, bestSucc sweep, stabilize, fingers, pings.
    let periodics = p
        .strands
        .iter()
        .filter(|s| matches!(s.trigger, Trigger::Periodic { .. }))
        .count();
    assert!(
        periodics >= 5,
        "chord needs its protocol timers, got {periodics}"
    );
    // Lookup rules l1-l4 trigger on the lookup event.
    let lookup_triggered = p
        .strands
        .iter()
        .filter(|s| matches!(&s.trigger, Trigger::Event { name } if name == "lookup"))
        .count();
    assert!(lookup_triggered >= 3, "l1/l2/l2b/l4 trigger on lookup");
}

#[test]
fn chord_facts_plan() {
    let p = plan(&node_facts("n0", 0xAB, None));
    assert!(
        p.facts.len() >= 4,
        "bootstrap node: node, pred, finger fix, succ"
    );
    let p = plan(&node_facts("n1", 0xCD, Some("n0")));
    assert_eq!(p.strands.len(), 0, "facts only");
}

#[test]
fn ring_monitors_plan() {
    let p = plan(&ring::active_probe_program(7));
    assert_eq!(p.strands.len(), 3, "rp1, rp2, rp3");
    assert!(
        matches!(p.strands[0].trigger, Trigger::Periodic { period_secs } if period_secs == 7.0)
    );

    let p = plan(&ring::passive_check_program());
    assert_eq!(p.strands.len(), 1, "rp4");
    // rp4 is passive: triggered by Chord's own stabilization message.
    assert!(matches!(&p.strands[0].trigger, Trigger::Event { name } if name == "stabilizeRequest"));
}

#[test]
fn ordering_monitors_plan() {
    let p = plan(&ordering::opportunistic_program());
    assert!(matches!(&p.strands[0].trigger, Trigger::Event { name } if name == "lookupResults"));

    let p = plan(&ordering::traversal_program());
    // ri2-ri7: one strand each (all event-triggered).
    assert_eq!(p.strands.len(), 6);
    assert!(p
        .strands
        .iter()
        .all(|s| matches!(s.trigger, Trigger::Event { .. })));
}

#[test]
fn oscillation_monitors_plan() {
    let p = plan(&oscillation::full_program());
    // os1/os2 are passive taps on gossip messages.
    for msg in ["sendPred", "returnSucc"] {
        assert!(
            p.strands
                .iter()
                .any(|s| matches!(&s.trigger, Trigger::Event { name } if name == msg)),
            "oscillation must tap {msg}"
        );
    }
    // os8 recounts on nbrOscill table inserts.
    assert!(p
        .strands
        .iter()
        .any(|s| matches!(&s.trigger, Trigger::TableInsert { name } if name == "nbrOscill")));
}

#[test]
fn consistency_probe_plans() {
    let p = plan(&consistency::probe_program(
        &consistency::ProbeConfig::default(),
    ));
    assert_eq!(p.tables.len(), 5, "cs state tables");
    // cs10/cs11 are delete rules.
    let deletes = p.strands.iter().filter(|s| s.head.delete).count();
    assert_eq!(deletes, 2, "cs10 and cs11");
    // cs6 recomputes on conRespTable inserts (table-triggered aggregate).
    let cs6 = p
        .strands
        .iter()
        .find(|s| s.rule_label == "cs6")
        .expect("cs6 present");
    assert!(matches!(&cs6.trigger, Trigger::TableInsert { name } if name == "conRespTable"));
    assert!(cs6.head.agg.is_some());
}

#[test]
fn profiling_walk_plans() {
    let p = plan(&profiling::profiling_program());
    // The walk joins the trace tables — they must be classified as
    // tables (tracing-enabled install), not events.
    for s in &p.strands {
        if s.rule_label == "ep5" || s.rule_label == "ep6" {
            assert!(s.ops.iter().any(
                |op| matches!(op, p2ql::planner::Op::Join { table, .. } if table == "ruleExec")
            ));
        }
    }
    // Termination via zero-count aggregates (ep8/ep9).
    let zero_caps = p
        .strands
        .iter()
        .filter(|s| {
            s.head
                .agg
                .as_ref()
                .is_some_and(|a| a.group_bound_by_trigger)
        })
        .count();
    assert!(zero_caps >= 2, "ep8/ep9 need zero-count emission");
}

#[test]
fn snapshot_programs_plan() {
    let p = plan(&snapshot::backpointer_program());
    assert!(p
        .strands
        .iter()
        .any(|s| matches!(&s.trigger, Trigger::Event { name } if name == "pingReq")));

    // The snapshot rules install after the back-pointer rules, whose
    // tables they read.
    let bp = ["backPointer", "numBackPointers"];
    let p = plan_with(&snapshot::snapshot_program(), &bp);
    // sr8's count must allow zero-emission (sr9 depends on it).
    let sr8 = p
        .strands
        .iter()
        .find(|s| s.rule_label == "sr8")
        .expect("sr8");
    assert!(sr8.head.agg.as_ref().unwrap().group_bound_by_trigger);

    let snap_tables = [
        "backPointer",
        "numBackPointers",
        "snapState",
        "currentSnap",
        "snapBestSucc",
        "snapFinger",
        "snapPred",
        "channelState",
        "channelSuccDump",
        "channelDoneCount",
        "channelTotalCount",
    ];
    let p = plan_with(
        &snapshot::initiator_program(&Addr::new("n0"), 60.0),
        &snap_tables,
    );
    assert!(p
        .strands
        .iter()
        .any(|s| matches!(s.trigger, Trigger::Periodic { .. })));
    assert_eq!(p.facts.len(), 1, "the seed snapState row");

    let p = plan_with(&snapshot::snapshot_lookup_program(), &snap_tables);
    assert!(p
        .strands
        .iter()
        .any(|s| matches!(&s.trigger, Trigger::Event { name } if name == "sLookup")));

    let p = plan_with(&snapshot::snapshot_probe_program(8.0, 5, 5), &snap_tables);
    assert!(p.strands.iter().any(|s| s.rule_label == "scs4"));
}

#[test]
fn watchpoint_suite_plans_passively() {
    let p = plan(&watchpoints::suite_program(15));
    // Exactly one timer (the roll-up); every detector rides existing
    // traffic.
    let periodics = p
        .strands
        .iter()
        .filter(|s| matches!(s.trigger, Trigger::Periodic { .. }))
        .count();
    assert_eq!(periodics, 1, "passive suite must not probe");
}

#[test]
fn every_program_round_trips_through_the_pretty_printer() {
    let programs = [
        chord_program(&ChordConfig::default()),
        ring::active_probe_program(7),
        ring::passive_check_program(),
        ordering::opportunistic_program(),
        ordering::traversal_program(),
        oscillation::full_program(),
        consistency::probe_program(&consistency::ProbeConfig::default()),
        profiling::profiling_program(),
        snapshot::backpointer_program(),
        snapshot::snapshot_program(),
        snapshot::snapshot_lookup_program(),
        snapshot::snapshot_probe_program(8.0, 5, 5),
        watchpoints::suite_program(15),
    ];
    for src in &programs {
        let p1 = p2ql::overlog::parse_program(src).unwrap();
        let printed = p2ql::overlog::pretty::program_to_string(&p1);
        let p2 = p2ql::overlog::parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "pretty-printer changed semantics");
    }
}
