//! End-to-end integration: the full stack — Chord, tracing, and every
//! §3 monitoring family — running together on one simulated population.

use p2ql::chord::testbed::{collect_lookup_results, issue_lookup};
use p2ql::chord::{build_ring, ring_is_ordered, ring_is_well_formed, ChordConfig};
use p2ql::core::{NodeConfig, SimHarness};
use p2ql::monitor::{consistency, ordering, oscillation, ring, snapshot};
use p2ql::types::{RingId, TimeDelta};
use std::fmt::Write as _;

/// The kitchen sink: all monitors coexist on a traced ring without
/// interfering with the protocol or each other, stay silent while the
/// system is healthy, and (several of them) fire when a node flaps.
#[test]
fn all_monitors_coexist_and_fire_on_faults() {
    let mut sim = SimHarness::new(
        Default::default(),
        NodeConfig {
            tracing: true,
            ..Default::default()
        },
        90,
    );
    let topo = build_ring(&mut sim, 8, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(240));
    assert!(ring_is_ordered(&mut sim, &topo), "base ring must converge");

    // Install everything, on-line.
    for a in topo.addrs.clone() {
        sim.install(&a, &ring::active_probe_program(9)).unwrap();
        sim.install(&a, &ring::passive_check_program()).unwrap();
        sim.install(&a, &ordering::traversal_program()).unwrap();
        sim.install(&a, &oscillation::full_program()).unwrap();
        sim.install(&a, &snapshot::backpointer_program()).unwrap();
        sim.install(&a, &snapshot::snapshot_program()).unwrap();
        sim.node_mut(&a).watch(ring::ALARM);
        sim.node_mut(&a).watch(oscillation::OSCILL);
    }
    let prober = topo.addrs[2].clone();
    sim.install(
        &prober,
        &consistency::probe_program(&consistency::ProbeConfig {
            probe_secs: 8.0,
            tally_secs: 10,
            wait_secs: 10,
            ..Default::default()
        }),
    )
    .unwrap();
    sim.node_mut(&prober).watch(consistency::CONSISTENCY);
    let initiator = topo.addrs[0].clone();
    sim.install(&initiator, &snapshot::initiator_program(&initiator, 45.0))
        .unwrap();

    // Healthy phase: protocol keeps working, monitors stay quiet.
    sim.run_for(TimeDelta::from_secs(120));
    assert!(
        ring_is_ordered(&mut sim, &topo),
        "monitors must not perturb the ring"
    );
    for a in topo.addrs.clone() {
        assert!(
            sim.node_mut(&a)
                .take_watched(oscillation::OSCILL)
                .is_empty(),
            "false oscillation at {a}"
        );
    }
    let healthy_metrics =
        consistency::metrics(sim.node_mut(&prober).watched(consistency::CONSISTENCY));
    assert!(!healthy_metrics.is_empty(), "probe must produce metrics");
    assert!(
        healthy_metrics.iter().all(|(_, m)| (*m - 1.0).abs() < 1e-9),
        "healthy ring must be consistent: {healthy_metrics:?}"
    );

    // Snapshot 1 must have completed on every node.
    for a in topo.addrs.clone() {
        assert_eq!(
            snapshot::phase_of(&mut sim, &a, 1).as_deref(),
            Some("Done"),
            "snapshot incomplete at {a}"
        );
    }

    // Fault phase: flap a node; oscillation and ring alarms must appear
    // somewhere in the population.
    let victim = topo
        .live_sorted(&sim)
        .into_iter()
        .map(|(_, a)| a)
        .find(|a| a != topo.landmark() && *a != prober && *a != initiator)
        .unwrap();
    for _ in 0..6 {
        sim.crash(&victim);
        sim.run_for(TimeDelta::from_secs(16));
        sim.revive(&victim);
        sim.run_for(TimeDelta::from_secs(8));
    }
    sim.run_for(TimeDelta::from_secs(60));

    let oscills: usize = topo
        .addrs
        .clone()
        .iter()
        .map(|a| sim.node_mut(a).watched(oscillation::OSCILL).len())
        .sum();
    assert!(
        oscills > 0,
        "flapping node must trigger oscillation detectors"
    );

    // And the system recovers afterwards.
    sim.run_for(TimeDelta::from_secs(120));
    assert!(
        ring_is_well_formed(&mut sim, &topo),
        "ring must settle after faults"
    );
}

/// Monitoring queries are watchpoints an operator can also *remove*; the
/// base system must be unaffected by a full install/uninstall cycle.
#[test]
fn piecemeal_install_and_uninstall() {
    let mut sim = SimHarness::with_seed(91);
    let topo = build_ring(&mut sim, 5, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(180));
    assert!(ring_is_ordered(&mut sim, &topo));

    let node = topo.addrs[1].clone();
    let strands_before = sim.node_mut(&node).strand_count();
    let pid1 = sim.install(&node, &ring::active_probe_program(5)).unwrap();
    let pid2 = sim
        .install(&node, &ordering::opportunistic_program())
        .unwrap();
    assert!(sim.node_mut(&node).strand_count() > strands_before);

    sim.run_for(TimeDelta::from_secs(30));
    sim.node_mut(&node).uninstall(pid1);
    sim.node_mut(&node).uninstall(pid2);
    assert_eq!(sim.node_mut(&node).strand_count(), strands_before);

    // The ring keeps running; removed monitors leave no timers behind.
    sim.node_mut(&node).watch(ring::ALARM);
    sim.run_for(TimeDelta::from_secs(60));
    assert!(sim.node_mut(&node).watched(ring::ALARM).is_empty());
    assert!(ring_is_ordered(&mut sim, &topo));
}

/// Golden-file equivalence for the execution trace (§2.1.2).
///
/// A 4-node Chord ring warms up untraced, flips tracing on at runtime,
/// and serves one lookup. The resulting Fig 5-style dispatch counters,
/// per-strand execution counts, and the *full* `ruleExec`/`tupleTable`
/// contents on every node must be bit-identical to the committed golden
/// file — the engine may batch deltas internally, but the observable
/// per-tuple trace (including assigned tuple IDs) must not change.
///
/// Regenerate with `GOLDEN_REGEN=1 cargo test golden_chord_lookup`.
#[test]
fn golden_chord_lookup_trace_is_stable() {
    let mut sim = SimHarness::with_seed(4242);
    let topo = build_ring(&mut sim, 4, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(120));
    assert!(
        ring_is_ordered(&mut sim, &topo),
        "4-node ring must converge"
    );

    // Trace only the lookup phase (the §4 logging experiment's toggle).
    for a in topo.addrs.clone() {
        sim.node_mut(&a).set_tracing(true);
    }
    let requester = topo.addrs[1].clone();
    let origin = topo.addrs[2].clone();
    sim.node_mut(&requester).watch("lookupResults");
    let key = RingId(0x5EED_CAFE_F00D_D00D);
    let req = issue_lookup(&mut sim, &origin, key, &requester, 77);
    sim.run_for(TimeDelta::from_secs(5));
    let answers = collect_lookup_results(sim.node_mut(&requester).watched("lookupResults"));
    assert!(answers.contains_key(&req), "lookup must be answered");

    let now = sim.now();
    let mut dump = String::new();
    writeln!(
        dump,
        "# golden: 4-node chord, seed 4242, traced lookup at t=120s"
    )
    .unwrap();
    for a in topo.addrs.clone() {
        writeln!(dump, "node {a}").unwrap();
        let m = sim.node_mut(&a).metrics().clone();
        writeln!(
            dump,
            "  counters dispatched={} firings={} deletes={} overflow={} malformed={}",
            m.tuples_dispatched, m.strand_firings, m.deletes, m.overflow_drops, m.malformed_drops
        )
        .unwrap();
        for (id, _, st) in sim.node_mut(&a).strand_stats() {
            writeln!(
                dump,
                "  strand {id} fired={} outputs={} errors={}",
                st.fired, st.outputs, st.eval_errors
            )
            .unwrap();
        }
        for table in ["ruleExec", "tupleTable"] {
            let mut rows: Vec<String> = sim
                .node_mut(&a)
                .table_scan(table, now)
                .iter()
                .map(|t| t.to_string())
                .collect();
            rows.sort();
            for r in rows {
                writeln!(dump, "  {table} {r}").unwrap();
            }
        }
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/chord_lookup_trace.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &dump).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing: regenerate with GOLDEN_REGEN=1");
    if dump != want {
        for (i, (got, exp)) in dump.lines().zip(want.lines()).enumerate() {
            assert_eq!(got, exp, "trace diverges from golden at line {}", i + 1);
        }
        panic!(
            "trace length diverges from golden: {} vs {} lines",
            dump.lines().count(),
            want.lines().count()
        );
    }
}

/// The tracer's resource bounds (§3.4) hold under sustained load.
#[test]
fn trace_tables_stay_bounded() {
    let mut sim = SimHarness::new(
        Default::default(),
        NodeConfig {
            tracing: true,
            ..Default::default()
        },
        92,
    );
    let topo = build_ring(&mut sim, 6, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(600));
    let now = sim.now();
    for a in topo.addrs.clone() {
        let execs = sim.node_mut(&a).table_scan("ruleExec", now).len();
        let tuples = sim.node_mut(&a).table_scan("tupleTable", now).len();
        assert!(execs <= 10_000, "{a}: ruleExec unbounded ({execs})");
        assert!(tuples <= 20_000, "{a}: tupleTable unbounded ({tuples})");
        // And not trivially empty either — the system is being traced.
        assert!(execs > 0, "{a}: tracing produced nothing");
    }
}
