//! The shared [`Driver`] service loop over every transport substrate.
//!
//! The simulator exercises `Driver<SimPort>` internally (every
//! `SimHarness` node runs behind one); these tests drive the same loop
//! over the threaded hub and real UDP sockets via
//! [`Driver::run_realtime`], replacing the hand-rolled per-substrate
//! loops the runtimes used to carry.

use p2ql::core::{Driver, Node, NodeConfig, ThreadedPort, UdpPort};
use p2ql::net::{ThreadedHub, UdpTransport};
use p2ql::types::{Addr, Time, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn threaded_nodes_relay_through_shared_driver() {
    let hub = ThreadedHub::new();
    let stop = Arc::new(AtomicBool::new(false));
    let names = ["da", "db"];
    let mut handles = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let addr = Addr::new(*name);
        let mut node = Node::new(
            addr.clone(),
            NodeConfig {
                stagger_timers: false,
                seed: i as u64,
                ..Default::default()
            },
        );
        node.install(
            "materialize(seen, infinity, infinity, keys(1, 2)).
             s1 seen@N(E) :- token@N(E).",
            Time::ZERO,
        )
        .unwrap();
        if i == 0 {
            node.install(
                r#"d1 token@N(E) :- periodic@N(E, 1).
                   d2 token@"db"(E) :- token@N(E)."#,
                Time::ZERO,
            )
            .unwrap();
        }
        let port = ThreadedPort::register(&hub, addr);
        let mut driver = Driver::new(node, port);
        let stop2 = stop.clone();
        handles.push(std::thread::spawn(move || {
            driver.run_realtime(&stop2, Duration::from_millis(2));
            driver.into_node()
        }));
    }
    std::thread::sleep(Duration::from_millis(2_500));
    stop.store(true, Ordering::Relaxed);
    let mut nodes: Vec<Node> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let now = Time(10_000_000_000);
    let seen_a = nodes[0].table_scan("seen", now).len();
    let seen_b = nodes[1].table_scan("seen", now).len();
    assert!(seen_a >= 2, "da generated tokens: {seen_a}");
    assert!(seen_b >= 2, "db received tokens over the hub: {seen_b}");
    assert!(nodes[1].metrics().msgs_received >= 2);
}

#[test]
fn udp_nodes_exchange_through_shared_driver() {
    let ta = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let tb = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let a_addr = ta.local_addr().unwrap();
    let b_addr = tb.local_addr().unwrap();

    let mut a = Node::new(
        a_addr.clone(),
        NodeConfig {
            stagger_timers: false,
            ..Default::default()
        },
    );
    a.install(
        &format!(
            r#"d1 tick@N(E) :- periodic@N(E, 1).
               d2 report@"{b_addr}"(E) :- tick@N(E)."#
        ),
        Time::ZERO,
    )
    .unwrap();
    let mut b = Node::new(b_addr.clone(), NodeConfig::default());
    b.install(
        "materialize(reports, infinity, infinity, keys(1, 2)).
         r1 reports@N(E) :- report@N(E).",
        Time::ZERO,
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let spawn = |node: Node, transport: UdpTransport, stop: Arc<AtomicBool>| {
        std::thread::spawn(move || {
            let mut driver = Driver::new(node, UdpPort::new(transport));
            driver.run_realtime(&stop, Duration::from_millis(2));
            driver.into_node()
        })
    };
    let ha = spawn(a, ta, stop.clone());
    let hb = spawn(b, tb, stop.clone());
    std::thread::sleep(Duration::from_millis(2_500));
    stop.store(true, Ordering::Relaxed);
    let a = ha.join().unwrap();
    let mut b = hb.join().unwrap();

    let now = Time(u64::MAX / 2);
    let reports = b.table_scan("reports", now).len();
    assert!(reports >= 1, "b received {reports} reports over UDP");
    assert!(a.metrics().msgs_sent >= 1);
    assert!(b.metrics().msgs_received >= 1);
}

#[test]
fn udp_driver_counts_hostile_datagrams() {
    let t = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let addr = t.local_addr().unwrap();
    let mut node = Node::new(addr.clone(), NodeConfig::default());
    node.install("r1 out@N(X) :- in@N(X).", Time::ZERO).unwrap();
    node.watch("out");
    let mut driver = Driver::new(node, UdpPort::new(t));

    // Garbage datagrams followed by one valid frame.
    let raw = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    for _ in 0..5 {
        raw.send_to(&[0xBA, 0xD0, 0xCA, 0xFE], addr.as_str())
            .unwrap();
    }
    let peer = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    peer.send(&p2ql::net::Envelope::new(
        p2ql::types::Tuple::new("in", [Value::Addr(addr.clone()), Value::Int(1)]),
        peer.local_addr().unwrap(),
        addr,
    ))
    .unwrap();

    // Service until the good frame lands (datagram delivery on loopback
    // is fast but not instant).
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while std::time::Instant::now() < deadline && driver.node().watched("out").is_empty() {
        driver.tick(Time::ZERO);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        driver.node().watched("out").len(),
        1,
        "good frame processed"
    );
    assert!(
        driver.transport_mut().malformed >= 1,
        "garbage must be counted, not fatal"
    );
}
