//! The runtime off the simulator: real threads, real time, marshaled
//! messages (DESIGN.md §2.4's second substrate).
//!
//! Each node runs on its own OS thread with a wall clock; envelopes cross
//! thread boundaries through the `p2-net` wire codec. This is the
//! "production-shaped" deployment mode; the test runs a small relay
//! program across three nodes and checks the distributed view converges.

use p2ql::core::{Node, NodeConfig};
use p2ql::net::{Envelope, ThreadedHub};
use p2ql::types::{Addr, Time, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Drive one node against the hub until `stop` is set.
fn node_thread(
    mut node: Node,
    hub: ThreadedHub,
    mailbox: p2ql::net::threaded::Mailbox,
    stop: Arc<AtomicBool>,
) -> Node {
    let epoch = Instant::now();
    let now = |epoch: Instant| Time(epoch.elapsed().as_micros() as u64);
    while !stop.load(Ordering::Relaxed) {
        let t = now(epoch);
        node.fire_timers(t);
        // Drain incoming frames.
        while let Ok(Some(env)) = mailbox.try_recv() {
            node.deliver(env, t);
        }
        for env in node.pump(t) {
            hub.send(&env);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Final drain: frames already in the channel when the stop flag flipped.
    let t = now(epoch);
    while let Ok(Some(env)) = mailbox.try_recv() {
        node.deliver(env, t);
    }
    let _ = node.pump(t);
    node
}

#[test]
fn three_threaded_nodes_relay_and_converge() {
    let hub = ThreadedHub::new();
    let names = ["ta", "tb", "tc"];
    let stop = Arc::new(AtomicBool::new(false));

    // Program: each node materializes `seen`; ta periodically emits a
    // token that relays ta -> tb -> tc, each hop recording it.
    let mut handles = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let addr = Addr::new(*name);
        let mut node = Node::new(
            addr.clone(),
            NodeConfig {
                stagger_timers: false,
                seed: i as u64,
                ..Default::default()
            },
        );
        node.install(
            "materialize(seen, infinity, infinity, keys(1, 2)).
             s1 seen@N(E) :- token@N(E).",
            Time::ZERO,
        )
        .unwrap();
        match i {
            0 => {
                node.install(
                    r#"d1 token@N(E) :- periodic@N(E, 1).
                       d2 token@"tb"(E) :- token@N(E)."#,
                    Time::ZERO,
                )
                .unwrap();
            }
            1 => {
                node.install(r#"r1 token@"tc"(E) :- token@N(E)."#, Time::ZERO)
                    .unwrap();
            }
            _ => {}
        }
        let mailbox = hub.register(addr);
        let hub2 = hub.clone();
        let stop2 = stop.clone();
        handles.push(std::thread::spawn(move || {
            node_thread(node, hub2, mailbox, stop2)
        }));
    }

    // Let the relay run ~3.5 real seconds (three to four periodic rounds).
    std::thread::sleep(Duration::from_millis(3_500));
    stop.store(true, Ordering::Relaxed);
    let mut nodes: Vec<Node> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every node recorded tokens; tc's tokens all came via two real
    // network hops (ta -> tb -> tc) through the wire codec.
    let now = Time(10_000_000_000);
    let seen_a = nodes[0].table_scan("seen", now).len();
    let seen_b = nodes[1].table_scan("seen", now).len();
    let seen_c = nodes[2].table_scan("seen", now).len();
    assert!(seen_a >= 2, "ta generated tokens: {seen_a}");
    assert!(seen_b >= 2, "tb relayed tokens: {seen_b}");
    assert!(seen_c >= 2, "tc received relayed tokens: {seen_c}");
    // tb may have been mid-relay at shutdown; allow one in-flight token.
    assert!(
        seen_c + 1 >= seen_b,
        "relay dropped tokens: tb={seen_b} tc={seen_c}"
    );
    assert!(nodes[2].metrics().msgs_received >= 2);
}

#[test]
fn threaded_node_survives_garbage_frames() {
    // A hostile/corrupt peer must not wedge a node: undecodable frames
    // surface as codec errors at the mailbox, and the node keeps going.
    let hub = ThreadedHub::new();
    let addr = Addr::new("solo");
    let mut node = Node::new(addr.clone(), NodeConfig::default());
    node.install("r1 out@N(X) :- in@N(X).", Time::ZERO).unwrap();
    let mailbox = hub.register(addr.clone());

    // A valid frame, then garbage bytes pushed through a raw sender.
    let good = Envelope::new(
        Tuple::new("in", [Value::Addr(addr.clone()), Value::Int(1)]),
        Addr::new("peer"),
        addr.clone(),
    );
    hub.send(&good);
    // Garbage: re-register a fake peer route and send corrupt bytes by
    // constructing an envelope whose decode will fail at the receiver...
    // the hub encodes internally, so corruption is simulated at decode
    // level through the codec's own tests; here we just assert the valid
    // frame round-trips and the node processes it.
    let env = mailbox.try_recv().unwrap().expect("frame arrives");
    node.deliver(env, Time::ZERO);
    node.watch("out");
    let out = node.pump(Time::ZERO);
    assert!(out.is_empty());
    assert_eq!(node.watched("out").len(), 1);
}
