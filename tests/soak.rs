//! Long-horizon soak: a traced ring runs for a virtual hour under a
//! mixed monitoring load, with health and resource-bound assertions
//! sampled every virtual five minutes. Catches slow leaks (unbounded
//! tables, tracer growth, order-queue bloat) that short tests miss.

use p2ql::chord::{build_ring, ring_is_ordered, ChordConfig};
use p2ql::core::{NodeConfig, SimHarness};
use p2ql::monitor::{consistency, snapshot, watchpoints};
use p2ql::types::TimeDelta;

#[test]
fn one_virtual_hour_is_stable_and_bounded() {
    let mut sim = SimHarness::new(
        Default::default(),
        NodeConfig {
            tracing: true,
            ..Default::default()
        },
        2025,
    );
    let ring = build_ring(&mut sim, 10, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(240));
    assert!(ring_is_ordered(&mut sim, &ring), "warmup");

    // Mixed standing load: passive watchpoints everywhere, probes on one
    // node, snapshots from another.
    for a in ring.addrs.clone() {
        sim.install(&a, &watchpoints::suite_program(30)).unwrap();
        sim.install(&a, &snapshot::backpointer_program()).unwrap();
        sim.install(&a, &snapshot::snapshot_program()).unwrap();
    }
    let prober = ring.addrs[3].clone();
    sim.install(
        &prober,
        &consistency::probe_program(&consistency::ProbeConfig::default()),
    )
    .unwrap();
    let initiator = ring.addrs[0].clone();
    sim.install(&initiator, &snapshot::initiator_program(&initiator, 60.0))
        .unwrap();
    sim.node_mut(&prober).watch(consistency::CONSISTENCY);

    let mut peak_tuples = 0usize;
    for _five_minutes in 0..12 {
        sim.run_for(TimeDelta::from_secs(300));
        assert!(
            ring_is_ordered(&mut sim, &ring),
            "ring lost ordering at {}",
            sim.now()
        );
        for a in ring.addrs.clone() {
            let live = sim.node_mut(&a).live_tuples();
            peak_tuples = peak_tuples.max(live);
            assert!(
                live < 50_000,
                "{a} holds {live} tuples at {} — leak",
                sim.now()
            );
            let m = sim.node_mut(&a).metrics().clone();
            assert_eq!(m.overflow_drops, 0, "{a} hit the dispatch budget");
            assert_eq!(m.malformed_drops, 0, "{a} produced malformed tuples");
        }
    }
    // Soft state must have reached a steady level well below the caps.
    assert!(peak_tuples > 100, "suspiciously idle soak");

    // The probe stayed healthy the whole hour.
    let ms = consistency::metrics(sim.node_mut(&prober).watched(consistency::CONSISTENCY));
    assert!(
        ms.len() >= 30,
        "probe produced {} metrics over an hour",
        ms.len()
    );
    let min = ms.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    assert!(
        (min - 1.0).abs() < 1e-9,
        "consistency dipped to {min} on an undisturbed ring"
    );
}
