//! Sharded == sequential: the parallel population engine must be
//! bit-identical to the single-threaded harness at every shard count
//! (DESIGN.md §2.10). These tests drive the same scenario through
//! `SimHarness` and `ParallelHarness{1,2,4,8}` via the `Population`
//! trait and compare everything deterministic: tuple stores, tracer
//! records, per-node envelope counts, and the golden Chord trace.

use p2ql::chord::testbed::collect_lookup_results;
use p2ql::chord::{build_ring, issue_lookup, ring_is_ordered, ChordConfig};
use p2ql::core::{NodeConfig, ParallelHarness, Population, SimHarness};
use p2ql::net::SimConfig;
use p2ql::types::{Addr, RingId, TimeDelta, Tuple, Value};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Everything deterministic a population exposes, as one string: per
/// node, the envelope counters, dataflow counters, and the sorted rows
/// of the scenario table plus both tracer tables.
fn fingerprint<H: Population>(sim: &mut H, tables: &[&str]) -> String {
    let now = sim.now();
    let addrs: Vec<Addr> = sim.addrs().to_vec();
    let stats = sim.net_stats();
    let mut out = String::new();
    for a in &addrs {
        let delivered = stats.delivered_to.get(a).copied().unwrap_or(0);
        writeln!(
            out,
            "node {a} sent={} delivered={delivered}",
            stats.sent_by(a)
        )
        .unwrap();
        let m = sim.node_mut(a).metrics().clone();
        writeln!(
            out,
            "  counters dispatched={} firings={} deletes={} overflow={} malformed={}",
            m.tuples_dispatched, m.strand_firings, m.deletes, m.overflow_drops, m.malformed_drops
        )
        .unwrap();
        for table in tables {
            let mut rows: Vec<String> = sim
                .node_mut(a)
                .table_scan(table, now)
                .iter()
                .map(|t| t.to_string())
                .collect();
            rows.sort();
            for r in rows {
                writeln!(out, "  {table} {r}").unwrap();
            }
        }
    }
    writeln!(out, "dropped={}", stats.dropped).unwrap();
    out
}

/// A fault/injection step for the token-ring scenario.
#[derive(Debug, Clone, Copy)]
enum Op {
    Inject(usize),
    Crash(usize),
    Revive(usize),
}

/// A token-passing ring with tracing on: every node ticks periodically,
/// hands a hop-limited token to its successor, and records arrivals.
/// Cheap enough for 64 nodes, rich enough to exercise timers, sends,
/// deletes-by-expiry, and the tracer.
fn run_token_ring<H: Population>(sim: &mut H, n: usize, ops: &[(u64, Op)]) -> String {
    let addrs: Vec<Addr> = (0..n).map(|i| sim.add_node(&format!("m{i}"))).collect();
    sim.install_all(
        "materialize(succ, infinity, 8, keys(1)).
         materialize(seen, infinity, infinity, keys(1, 2, 3)).
         tick token@M(E, 3) :- periodic@N(E, 7), succ@N(M).
         fwd token@M(E, C2) :- token@N(E, C), C > 0, succ@N(M), C2 := C - 1.
         rec seen@N(E, C) :- token@N(E, C).",
    )
    .expect("token program installs");
    for (i, addr) in addrs.iter().enumerate() {
        let next = (i + 1) % n;
        sim.install(addr, &format!("succ@\"m{i}\"(\"m{next}\").\n"))
            .expect("succ fact installs");
    }
    for (k, &(delay, op)) in ops.iter().enumerate() {
        sim.run_for(TimeDelta::from_secs(delay));
        match op {
            Op::Inject(i) => sim.inject(
                &addrs[i % n].clone(),
                Tuple::new(
                    "token",
                    [
                        Value::Addr(addrs[i % n].clone()),
                        Value::Int(10_000 + k as i64),
                        Value::Int(2),
                    ],
                ),
            ),
            Op::Crash(i) => sim.crash(&addrs[i % n].clone()),
            Op::Revive(i) => sim.revive(&addrs[i % n].clone()),
        }
    }
    sim.run_for(TimeDelta::from_secs(45));
    fingerprint(sim, &["seen", "ruleExec", "tupleTable"])
}

fn traced_config() -> NodeConfig {
    NodeConfig {
        tracing: true,
        ..Default::default()
    }
}

fn check_equivalence(net: SimConfig, seed: u64, n: usize, ops: &[(u64, Op)]) {
    let want = run_token_ring(
        &mut SimHarness::new(net.clone(), traced_config(), seed),
        n,
        ops,
    );
    for shards in [1usize, 2, 4, 8] {
        let mut sim = ParallelHarness::new(net.clone(), traced_config(), seed, shards);
        let got = run_token_ring(&mut sim, n, ops);
        assert!(
            got == want,
            "{n} nodes diverged from sequential at {shards} shards (seed {seed})"
        );
    }
}

/// Fixed ceiling case: the ISSUE's full population span, with faults.
#[test]
fn sixty_four_nodes_match_at_every_shard_count() {
    let ops = [
        (3, Op::Inject(5)),
        (9, Op::Crash(11)),
        (8, Op::Inject(11)), // injected while down: must stay pending
        (7, Op::Revive(11)),
        (5, Op::Inject(40)),
    ];
    check_equivalence(SimConfig::default(), 20_260_806, 64, &ops);
}

/// The golden Chord lookup trace (tests/golden/chord_lookup_trace.txt,
/// produced by the sequential harness) must replay byte-for-byte on the
/// sharded engine — same tracer tuple IDs, same counters, same rows.
#[test]
fn golden_chord_trace_is_identical_when_sharded() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/chord_lookup_trace.txt");
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing: run the end_to_end golden test with GOLDEN_REGEN=1");
    for shards in [1usize, 2, 4] {
        let mut sim = ParallelHarness::with_seed(4242, shards);
        let dump = golden_chord_dump(&mut sim);
        if dump != want {
            for (i, (got, exp)) in dump.lines().zip(want.lines()).enumerate() {
                assert_eq!(
                    got,
                    exp,
                    "sharded trace (shards={shards}) diverges from golden at line {}",
                    i + 1
                );
            }
            panic!(
                "sharded trace (shards={shards}) length diverges: {} vs {} lines",
                dump.lines().count(),
                want.lines().count()
            );
        }
    }
}

/// The exact dump the sequential golden test builds, over any harness.
fn golden_chord_dump<H: Population>(sim: &mut H) -> String {
    let topo = build_ring(sim, 4, &ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(120));
    assert!(ring_is_ordered(sim, &topo), "4-node ring must converge");
    for a in topo.addrs.clone() {
        sim.node_mut(&a).set_tracing(true);
    }
    let requester = topo.addrs[1].clone();
    let origin = topo.addrs[2].clone();
    sim.node_mut(&requester).watch("lookupResults");
    let key = RingId(0x5EED_CAFE_F00D_D00D);
    let req = issue_lookup(sim, &origin, key, &requester, 77);
    sim.run_for(TimeDelta::from_secs(5));
    let answers = collect_lookup_results(sim.node_mut(&requester).watched("lookupResults"));
    assert!(answers.contains_key(&req), "lookup must be answered");

    let now = sim.now();
    let mut dump = String::new();
    writeln!(
        dump,
        "# golden: 4-node chord, seed 4242, traced lookup at t=120s"
    )
    .unwrap();
    for a in topo.addrs.clone() {
        writeln!(dump, "node {a}").unwrap();
        let m = sim.node_mut(&a).metrics().clone();
        writeln!(
            dump,
            "  counters dispatched={} firings={} deletes={} overflow={} malformed={}",
            m.tuples_dispatched, m.strand_firings, m.deletes, m.overflow_drops, m.malformed_drops
        )
        .unwrap();
        for (id, _, st) in sim.node_mut(&a).strand_stats() {
            writeln!(
                dump,
                "  strand {id} fired={} outputs={} errors={}",
                st.fired, st.outputs, st.eval_errors
            )
            .unwrap();
        }
        for table in ["ruleExec", "tupleTable"] {
            let mut rows: Vec<String> = sim
                .node_mut(&a)
                .table_scan(table, now)
                .iter()
                .map(|t| t.to_string())
                .collect();
            rows.sort();
            for r in rows {
                writeln!(dump, "  {table} {r}").unwrap();
            }
        }
    }
    dump
}

fn op_strategy() -> impl Strategy<Value = (u64, Op)> {
    (
        1u64..12,
        prop_oneof![
            (0usize..64).prop_map(Op::Inject),
            (0usize..64).prop_map(Op::Crash),
            (0usize..64).prop_map(Op::Revive),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For arbitrary seeds, population sizes in the ISSUE's 3–64 span,
    /// link jitter/loss, and random crash/revive/inject schedules, the
    /// sharded engine's tuple stores, tracer records, and per-node
    /// envelope counts are identical to the sequential harness at every
    /// shard count.
    #[test]
    fn sharded_population_matches_sequential(
        seed in 1u64..100_000,
        n in 3usize..65,
        jitter_ms in 0u64..15,
        lossy in 0u32..2,
        ops in proptest::collection::vec(op_strategy(), 0..6),
    ) {
        let net = SimConfig {
            jitter: TimeDelta::from_millis(jitter_ms),
            loss_rate: if lossy == 1 { 0.1 } else { 0.0 },
            ..Default::default()
        };
        check_equivalence(net, seed, n, &ops);
    }
}
