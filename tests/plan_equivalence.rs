//! Plan-equivalence oracle: the optimizer must never change *what* a
//! program computes, only *how*.
//!
//! Each case generates a small OverLog program from a template with
//! randomized constants, table contents, and trigger streams; compiles
//! it twice — `PlanOpts::off()` (the unoptimized semantic oracle) and
//! the default Full level (constant folding, pushdown, join reordering,
//! shared-prefix strands) — executes both against identical stores and
//! identical triggers, and requires the **output multisets** to be
//! identical. Ordering is allowed to differ (join reordering changes
//! enumeration order); content is not.

use p2ql::dataflow::tap::NullSink;
use p2ql::dataflow::{Action, StrandRuntime};
use p2ql::planner::expr::FixedCtx;
use p2ql::planner::{compile_program_with, CompiledProgram, PlanOpts, Trigger};
use p2ql::store::{Catalog, TableSpec};
use p2ql::types::{Time, TimeDelta, Tuple, Value};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Instantiate runtimes the way the node installer does: strands in a
/// shared-prefix family become one runtime at the leader's position.
fn instantiate(compiled: CompiledProgram) -> (Vec<StrandRuntime>, Catalog) {
    let mut cat = Catalog::new();
    for t in &compiled.tables {
        cat.register(TableSpec::new(
            &t.name,
            t.lifetime_secs.map(TimeDelta::from_secs_f64),
            t.max_rows,
            t.key_fields.clone(),
        ))
        .unwrap();
    }
    let plans: Vec<Arc<p2ql::planner::Strand>> =
        compiled.strands.into_iter().map(Arc::new).collect();
    let mut group_of: Vec<Option<usize>> = vec![None; plans.len()];
    for (g, pg) in compiled.prefix_groups.iter().enumerate() {
        for &m in &pg.members {
            group_of[m] = Some(g);
        }
    }
    let mut runtimes = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        match group_of[i] {
            Some(g) => {
                let pg = &compiled.prefix_groups[g];
                if pg.members[0] != i {
                    continue;
                }
                let members: Vec<_> = pg.members.iter().map(|&m| plans[m].clone()).collect();
                runtimes.push(StrandRuntime::family(members, pg.shared_ops));
            }
            None => runtimes.push(StrandRuntime::new(plan.clone())),
        }
    }
    (runtimes, cat)
}

/// Run every `ev`-triggered strand over the trigger stream; return the
/// outputs as a sorted multiset of `(delete, tuple)` strings.
fn execute(
    src: &str,
    opts: &PlanOpts,
    rows1: &[(i64, i64)],
    rows2: &[(i64, i64)],
    trigs: &[(i64, i64)],
) -> Vec<String> {
    let prog = p2ql::overlog::compile(src).expect("template must parse");
    let compiled = compile_program_with(&prog, &HashSet::new(), opts).expect("template must plan");
    let (mut runtimes, mut cat) = instantiate(compiled);

    let n = Value::addr("n1");
    for &(a, b) in rows1 {
        let _ = cat.insert(
            Tuple::new("t1", [n.clone(), Value::Int(a), Value::Int(b)]),
            Time::ZERO,
        );
    }
    for &(a, c) in rows2 {
        let _ = cat.insert(
            Tuple::new("t2", [n.clone(), Value::Int(a), Value::Int(c)]),
            Time::ZERO,
        );
    }

    let mut ctx = FixedCtx::default();
    let mut sink = NullSink;
    let mut actions: Vec<Action> = Vec::new();
    for &(x, k) in trigs {
        let ev = Tuple::new("ev", [n.clone(), Value::Int(x), Value::Int(k)]);
        for rt in &mut runtimes {
            if matches!(&rt.plan().trigger, Trigger::Event { name } if name == "ev") {
                rt.fire(&ev, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
                rt.run_to_quiescence(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
            }
        }
    }
    let mut out: Vec<String> = actions
        .iter()
        .map(|a| format!("{}{}", if a.delete { "delete " } else { "" }, a.tuple))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Off and Full produce identical output multisets for randomized
    /// join/select/assign rules — including constant selections that
    /// fold to true (dropped) or false (dead rule, zero output).
    #[test]
    fn optimizer_preserves_output_multisets(
        consts in (-3i64..4, -5i64..6, -2i64..8, 0i64..3),
        cc in (-2i64..3, -2i64..3),
        rows1 in proptest::collection::vec((0i64..4, -5i64..10), 0..5),
        rows2 in proptest::collection::vec((-5i64..10, -5i64..10), 0..5),
        trigs in proptest::collection::vec((0i64..4, 0i64..3), 1..5),
    ) {
        let (m, a, z_min, k_ne) = consts;
        let (c1, c2) = cc;
        // r1: joins + arithmetic assign + variable and constant selects.
        // r2: same trigger and joins as r1 after reordering — a
        //     shared-prefix family candidate at Full.
        let src = format!(
            "materialize(t1, 100, 100, keys(1, 2)).
             materialize(t2, 100, 100, keys(1, 2)).
             r1 out@N(X, Y, Z, W) :- ev@N(X, K), t1@N(X, Y), t2@N(Y, Z), \
                W := Y * {m} + {a}, Z > {z_min}, K != {k_ne}, {c1} < {c2} + 1.
             r2 out2@N(X, Z2) :- ev@N(X, K), t1@N(X, Y), t2@N(Y, Z2), Z2 < {z_min}."
        );
        let off = execute(&src, &PlanOpts::off(), &rows1, &rows2, &trigs);
        let full = execute(&src, &PlanOpts::default(), &rows1, &rows2, &trigs);
        prop_assert_eq!(&off, &full, "optimizer changed program output\n{}", src);
    }

    /// Delete-rule outputs survive optimization identically too.
    #[test]
    fn optimizer_preserves_deletes(
        bound in -5i64..10,
        rows1 in proptest::collection::vec((0i64..4, -5i64..10), 1..5),
        trigs in proptest::collection::vec((0i64..4, 0i64..3), 1..4),
    ) {
        let src = format!(
            "materialize(t1, 100, 100, keys(1, 2)).
             materialize(t2, 100, 100, keys(1, 2)).
             d1 delete t1@N(X, Y) :- ev@N(X, K), t1@N(X, Y), Y < {bound}."
        );
        let off = execute(&src, &PlanOpts::off(), &rows1, &[], &trigs);
        let full = execute(&src, &PlanOpts::default(), &rows1, &[], &trigs);
        prop_assert_eq!(&off, &full);
    }
}
