//! Time-travel forensics, end to end (ISSUE acceptance criteria).
//!
//! A §3-style question — *"what did this node's state and rule activity
//! look like during the incident window?"* — must be answerable:
//!
//! * **from archive segments alone**: the forensic query is installed,
//!   and fires, at a virtual time later than every live lifetime
//!   involved (app rows at 5 s, `ruleExec` at 120 s), so the live
//!   tables hold nothing from the window;
//! * **identically under both engines**: the sequential `SimHarness`
//!   and the sharded `ParallelHarness` must produce the same answers
//!   for the same seed, at every shard count tried.

use p2ql::core::{NodeConfig, ParallelHarness, Population, SimHarness};
use p2ql::net::SimConfig;
use p2ql::types::{Time, Tuple, Value};

const APP: &str = r#"
materialize(seen, 5, 32, keys(1, 2)).
r1 seen@N(X) :- ping@N(X).
r2 echo@N(X) :- ping@N(X), X > 10.
"#;

/// The forensic queries, installed AFTER the incident has expired:
/// `past()` over the app table and over the trace table.
const FORENSICS: &str = r#"
f1 hist@N(S) :- probe@N(T0, T1), past@N("seen", T0, T1, N, S).
f2 fired@N(R, IsE) :- probe@N(T0, T1),
    past@N("ruleExec", T0, T1, N, R, C, E, TIn, TOut, IsE).
"#;

/// Drive the incident, expire it, then ask. Returns canonical sorted
/// answer lines.
fn scenario<H: Population>(sim: &mut H) -> Vec<String> {
    let a = sim.add_node("a");
    sim.install(&a, APP).expect("app installs");

    // The incident: three pings inside [0s, 40s].
    for (t, x) in [(10u64, 7i64), (20, 11), (30, 42)] {
        sim.run_until(Time::from_secs(t));
        sim.inject(
            &a,
            Tuple::new("ping", [Value::Addr(a.clone()), Value::Int(x)]),
        );
    }

    // Outlive every lifetime involved: seen at 5s, ruleExec at 120s.
    // Periodic trace GC along the way is the deployed shape.
    for t in [100u64, 200, 300] {
        sim.run_until(Time::from_secs(t));
        sim.node_mut(&a).trace_gc(Time::from_secs(t));
    }
    let now = sim.now();
    assert!(
        sim.node_mut(&a).table_scan("seen", now).is_empty(),
        "live app rows must be gone"
    );
    assert!(
        sim.node_mut(&a).table_scan("ruleExec", now).is_empty(),
        "live trace rows must be gone"
    );

    // Only now does anyone ask.
    sim.install(&a, FORENSICS).expect("forensic query installs");
    sim.node_mut(&a).watch("hist");
    sim.node_mut(&a).watch("fired");
    sim.inject(
        &a,
        Tuple::new(
            "probe",
            [Value::Addr(a.clone()), Value::Int(0), Value::Int(40)],
        ),
    );
    let mut out: Vec<String> = sim
        .node_mut(&a)
        .take_watched("hist")
        .into_iter()
        .chain(sim.node_mut(&a).take_watched("fired"))
        .map(|(_, t)| t.to_string())
        .collect();
    out.sort();
    out
}

fn forensic_config() -> NodeConfig {
    NodeConfig {
        stagger_timers: false,
        ..NodeConfig::forensic()
    }
}

#[test]
fn forensic_query_answers_after_every_lifetime_expired() {
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 99);
    let got = scenario(&mut sim);
    // All three pings reconstruct from the archive...
    assert!(
        got.iter().any(|s| s.contains("hist") && s.contains("7")),
        "{got:?}"
    );
    assert!(
        got.iter().any(|s| s.contains("hist") && s.contains("11")),
        "{got:?}"
    );
    assert!(
        got.iter().any(|s| s.contains("hist") && s.contains("42")),
        "{got:?}"
    );
    // ...and the archived ruleExec provenance names both rules: r1 for
    // every ping, r2 only for the two that passed the X > 10 guard.
    let r1 = got
        .iter()
        .filter(|s| s.contains("fired") && s.contains("r1"))
        .count();
    let r2 = got
        .iter()
        .filter(|s| s.contains("fired") && s.contains("r2"))
        .count();
    assert!(r1 >= 3, "r1 fired for each ping: {got:?}");
    assert!(r2 >= 2 && r2 < r1, "r2 fired only past the guard: {got:?}");
}

#[test]
fn forensic_answers_are_engine_invariant() {
    let want = scenario(&mut SimHarness::new(
        SimConfig::default(),
        forensic_config(),
        7,
    ));
    assert!(!want.is_empty(), "scenario must produce answers");
    for shards in [1usize, 2, 4] {
        let mut sim = ParallelHarness::new(SimConfig::default(), forensic_config(), 7, shards);
        let got = scenario(&mut sim);
        assert_eq!(got, want, "diverged at {shards} shards");
    }
}

#[test]
fn interval_bounds_select_the_window() {
    // A second probe over a window missing the incident returns nothing:
    // history scans answer for the asked interval, not "everything".
    let mut sim = SimHarness::new(SimConfig::default(), forensic_config(), 13);
    let a = sim.add_node("a");
    sim.install(&a, APP).expect("app installs");
    sim.run_until(Time::from_secs(10));
    sim.inject(
        &a,
        Tuple::new("ping", [Value::Addr(a.clone()), Value::Int(1)]),
    );
    sim.run_until(Time::from_secs(200));
    sim.install(&a, FORENSICS).expect("forensic query installs");
    sim.node_mut(&a).watch("hist");
    // The row lived [10s, 15s]; ask about [100s, 120s].
    sim.inject(
        &a,
        Tuple::new(
            "probe",
            [Value::Addr(a.clone()), Value::Int(100), Value::Int(120)],
        ),
    );
    assert!(sim.node_mut(&a).take_watched("hist").is_empty());
    // The covering window still answers.
    sim.inject(
        &a,
        Tuple::new(
            "probe",
            [Value::Addr(a.clone()), Value::Int(0), Value::Int(60)],
        ),
    );
    assert_eq!(sim.node_mut(&a).take_watched("hist").len(), 1);
}
