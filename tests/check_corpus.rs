//! The shipped corpus must check clean.
//!
//! Every program this repository ships — the `programs/` examples, the
//! Chord overlay, and each §3 monitoring application stacked on the
//! overlay it observes — goes through the full `p2ql check --deep`
//! pipeline, flow passes included. Clean means **no errors and no
//! warnings**; notes are allowed (the corpus deliberately uses the
//! delete-cycle and fill-at-install idioms the notes describe, and the
//! deep passes annotate its bounded recursion with P2N604/P2N605).

use p2ql::analysis::{check_sources_with, AnalysisCtx, CheckOpts, CheckReport};
use p2ql::overlog::SourceUnit;

fn check_stack(units: &[(&str, &str)], ctx: &AnalysisCtx) -> (CheckReport, String) {
    let su: Vec<SourceUnit<'_>> = units
        .iter()
        .map(|(name, src)| SourceUnit { name, src })
        .collect();
    let report = check_sources_with(&su, ctx, &CheckOpts { deep: true });
    let rendered = report.diags.render(&su);
    (report, rendered)
}

fn assert_clean_with(what: &str, units: &[(&str, &str)], ctx: &AnalysisCtx) {
    let (report, rendered) = check_stack(units, ctx);
    assert!(report.passes(), "{what} does not check clean:\n{rendered}");
}

fn assert_clean(what: &str, units: &[(&str, &str)]) {
    assert_clean_with(what, units, &AnalysisCtx::default());
}

#[test]
fn example_programs_check_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/programs");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("olg") {
            continue;
        }
        found += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        assert_clean(
            path.file_name().unwrap().to_str().unwrap(),
            &[(path.to_str().unwrap(), &src)],
        );
    }
    assert!(found >= 2, "expected the shipped example programs");
}

fn chord_units() -> Vec<(&'static str, String)> {
    let cfg = p2ql::chord::ChordConfig::default();
    vec![
        ("chord.olg", p2ql::chord::chord_program(&cfg)),
        (
            "facts.olg",
            [
                p2ql::chord::node_facts("n1:0", 0x1111, None),
                p2ql::chord::node_facts("n2:0", 0x9999, Some("n1:0")),
            ]
            .join("\n"),
        ),
    ]
}

#[test]
fn chord_checks_clean() {
    let units = chord_units();
    let refs: Vec<(&str, &str)> = units.iter().map(|(n, s)| (*n, s.as_str())).collect();
    assert_clean("chord + node facts", &refs);
}

#[test]
fn chord_deep_pass_sees_its_bounded_recursion() {
    // The deep pass must actually engage on Chord: the lookup SCC
    // (l2/l3 recursion through `bestLookupDist`) is a real trigger
    // cycle, bounded by guarded rules — a P2N604 note, never a P2W601
    // warning. And the flow report must carry bounds for the roots.
    let units = chord_units();
    let refs: Vec<(&str, &str)> = units.iter().map(|(n, s)| (*n, s.as_str())).collect();
    let (report, rendered) = check_stack(&refs, &AnalysisCtx::default());
    assert!(report.passes(), "{rendered}");
    let notes: Vec<_> = report
        .diags
        .items
        .iter()
        .filter(|d| d.code == "P2N604")
        .collect();
    assert!(
        notes.iter().any(|d| d.message.contains("lookup")),
        "expected a bounded-cycle note for the lookup recursion:\n{rendered}"
    );
    let flow = report.flow.expect("deep run populates the flow report");
    assert!(
        flow.roots.contains(&"periodic".to_string()),
        "chord is periodic-driven: {:?}",
        flow.roots
    );
    assert!(
        !flow.strata.is_empty(),
        "stratum map covers the materialized graph"
    );
}

#[test]
fn section3_monitors_check_clean_stacked_on_chord() {
    use p2ql::monitor as m;
    // (file label, source, operator-injected events — `p2ql check --extern`)
    let monitors: Vec<(&str, String, &[&str])> = vec![
        (
            "consistency.olg",
            m::consistency::probe_program(&m::consistency::ProbeConfig::default()),
            &[],
        ),
        (
            "ordering_opportunistic.olg",
            m::ordering::opportunistic_program(),
            &[],
        ),
        // Traversal checks start from the periodic initiator's
        // orderingEvent; the two deploy together.
        (
            "ordering_traversal.olg",
            [
                m::ordering::periodic_initiator_program(10),
                m::ordering::traversal_program(),
            ]
            .join("\n"),
            &[],
        ),
        ("oscillation.olg", m::oscillation::full_program(), &[]),
        // The walk starts from a `traceResp` the operator injects
        // (`profiling::start_walk`).
        (
            "profiling.olg",
            m::profiling::profiling_program(),
            &["traceResp"],
        ),
        ("ring_active.olg", m::ring::active_probe_program(10), &[]),
        ("ring_passive.olg", m::ring::passive_check_program(), &[]),
        (
            "snapshot_backpointer.olg",
            m::snapshot::backpointer_program(),
            &[],
        ),
        // The snapshot walk probes the backPointer table the companion
        // program maintains; the two deploy together.
        (
            "snapshot.olg",
            [
                m::snapshot::backpointer_program(),
                m::snapshot::snapshot_program(),
            ]
            .join("\n"),
            &[],
        ),
        // Lookup simulation and probe both read the snapshot tables
        // (snapBestSucc, snapFinger, ...); they install on top of the
        // snapshot programs.
        (
            "snapshot_lookup.olg",
            [
                m::snapshot::backpointer_program(),
                m::snapshot::snapshot_program(),
                m::snapshot::snapshot_lookup_program(),
            ]
            .join("\n"),
            &[],
        ),
        (
            "snapshot_probe.olg",
            [
                m::snapshot::backpointer_program(),
                m::snapshot::snapshot_program(),
                m::snapshot::snapshot_lookup_program(),
                m::snapshot::snapshot_probe_program(5.0, 10, 5),
            ]
            .join("\n"),
            &[],
        ),
        ("watchpoints.olg", m::watchpoints::suite_program(10), &[]),
    ];
    let base = chord_units();
    for (name, src, externs) in &monitors {
        let mut units: Vec<(&str, &str)> = base.iter().map(|(n, s)| (*n, s.as_str())).collect();
        units.push((name, src));
        let mut ctx = AnalysisCtx::default();
        ctx.external_events
            .extend(externs.iter().map(|e| e.to_string()));
        assert_clean_with(name, &units, &ctx);
    }
}
