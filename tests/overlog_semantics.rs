//! Language-conformance tests: each case is a tiny OverLog program whose
//! observable behaviour pins down one semantic rule of the dialect
//! (DESIGN.md §2.1). These run through the full stack — front end,
//! planner, node runtime — on a single simulated node unless routing
//! itself is under test.

use p2ql::core::{Node, NodeConfig, SimHarness};
use p2ql::types::{Time, TimeDelta, Tuple, Value};

fn node() -> Node {
    Node::new(
        p2ql::types::Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            ..Default::default()
        },
    )
}

fn ev(name: &str, vals: impl IntoIterator<Item = Value>) -> Tuple {
    Tuple::new(
        name,
        std::iter::once(Value::addr("n1"))
            .chain(vals)
            .collect::<Vec<_>>(),
    )
}

#[test]
fn event_chains_run_to_fixpoint_in_one_pump() {
    let mut n = node();
    n.install(
        "r1 b@N(X) :- a@N(X).
         r2 c@N(X + 1) :- b@N(X).
         r3 d@N(X * 2) :- c@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("d");
    n.inject(ev("a", [Value::Int(5)]));
    n.pump(Time::ZERO);
    let d = n.take_watched("d");
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].1.get(1), Some(&Value::Int(12))); // (5+1)*2
}

#[test]
fn primary_key_replacement_fires_delta_but_refresh_does_not() {
    let mut n = node();
    n.install(
        "materialize(t, infinity, infinity, keys(1)).
         d change@N(X) :- t@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("change");
    n.inject(ev("t", [Value::Int(1)]));
    n.pump(Time::ZERO);
    n.inject(ev("t", [Value::Int(1)])); // identical: refresh, no delta
    n.pump(Time::ZERO);
    n.inject(ev("t", [Value::Int(2)])); // same key, new value: replace
    n.pump(Time::ZERO);
    assert_eq!(n.take_watched("change").len(), 2);
}

#[test]
fn soft_state_expires_out_of_joins() {
    let mut n = node();
    n.install(
        "materialize(t, 10, infinity, keys(1, 2)).
         q hit@N(X) :- probe@N(), t@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("hit");
    n.inject(ev("t", [Value::Int(1)]));
    n.pump(Time::ZERO);
    n.inject(ev("probe", []));
    n.pump(Time::from_secs(5));
    assert_eq!(n.take_watched("hit").len(), 1, "row alive at t=5");
    n.inject(ev("probe", []));
    n.pump(Time::from_secs(11));
    assert!(n.take_watched("hit").is_empty(), "row expired at t=11");
}

#[test]
fn delete_rule_matches_on_primary_key_only() {
    let mut n = node();
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).
         d delete t@N(K, V) :- zap@N(K), t@N(K, V).",
        Time::ZERO,
    )
    .unwrap();
    n.inject(ev("t", [Value::Int(1), Value::str("a")]));
    n.inject(ev("t", [Value::Int(2), Value::str("b")]));
    n.pump(Time::ZERO);
    n.inject(ev("zap", [Value::Int(1)]));
    n.pump(Time::ZERO);
    let rows = n.table_scan("t", Time::ZERO);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get(1), Some(&Value::Int(2)));
}

#[test]
fn count_star_emits_zero_when_group_is_trigger_bound() {
    let mut n = node();
    n.install(
        "materialize(t, infinity, infinity, keys(1, 2)).
         c n@N(K, count<*>) :- ask@N(K), t@N(K).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("n");
    n.inject(ev("ask", [Value::Int(7)]));
    n.pump(Time::ZERO);
    let got = n.take_watched("n");
    assert_eq!(got.len(), 1, "empty match set still answers");
    assert_eq!(got[0].1.get(2), Some(&Value::Int(0)));
}

#[test]
fn min_and_max_group_per_head_fields() {
    let mut n = node();
    n.install(
        "materialize(score, infinity, infinity, keys(1, 2, 3)).
         lo best@N(G, min<S>) :- tally@N(), score@N(G, S).
         hi worst@N(G, max<S>) :- tally@N(), score@N(G, S).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("best");
    n.watch("worst");
    for (g, s) in [("a", 3), ("a", 9), ("b", 5)] {
        n.inject(ev("score", [Value::str(g), Value::Int(s)]));
    }
    n.pump(Time::ZERO);
    n.inject(ev("tally", []));
    n.pump(Time::ZERO);
    let best = n.take_watched("best");
    assert_eq!(best.len(), 2, "one row per group");
    let a_best = best
        .iter()
        .find(|(_, t)| t.get(1) == Some(&Value::str("a")))
        .unwrap();
    assert_eq!(a_best.1.get(2), Some(&Value::Int(3)));
    let worst = n.take_watched("worst");
    let a_worst = worst
        .iter()
        .find(|(_, t)| t.get(1) == Some(&Value::str("a")))
        .unwrap();
    assert_eq!(a_worst.1.get(2), Some(&Value::Int(9)));
}

#[test]
fn ring_intervals_in_conditions() {
    let mut n = node();
    n.install(
        "r in1@N(K) :- ask@N(K, A, B), K in (A, B].
         s in2@N(K) :- ask@N(K, A, B), K in [A, B).",
        Time::ZERO,
    )
    .unwrap();
    n.watch("in1");
    n.watch("in2");
    // K == A: only [A, B) contains it.
    n.inject(ev("ask", [Value::id(10), Value::id(10), Value::id(20)]));
    n.pump(Time::ZERO);
    assert!(n.take_watched("in1").is_empty());
    assert_eq!(n.take_watched("in2").len(), 1);
    // Wrap-around: K=2 in (250, 5].
    n.inject(ev("ask", [Value::id(2), Value::id(250), Value::id(5)]));
    n.pump(Time::ZERO);
    assert_eq!(n.take_watched("in1").len(), 1);
}

#[test]
fn string_location_heads_route_remotely() {
    let mut sim = SimHarness::with_seed(5);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    // The head's location is a *string field value*, not an addr literal.
    sim.install(
        &a,
        "materialize(route, infinity, infinity, keys(1, 2)).
         f go@Dest(X) :- send@N(Dest, X), route@N(Dest).",
    )
    .unwrap();
    sim.inject(&a, Tuple::new("route", [Value::addr("a"), Value::str("b")]));
    sim.install(&b, "r seen@N(X) :- go@N(X).").unwrap();
    sim.node_mut(&b).watch("seen");
    sim.inject(
        &a,
        Tuple::new("send", [Value::addr("a"), Value::str("b"), Value::Int(9)]),
    );
    sim.run_for(TimeDelta::from_millis(50));
    assert_eq!(sim.node_mut(&b).take_watched("seen").len(), 1);
}

#[test]
fn fractional_periodic_periods() {
    let mut n = node();
    n.install("t tick@N(E) :- periodic@N(E, 0.5).", Time::ZERO)
        .unwrap();
    n.watch("tick");
    for ms in [500u64, 1000, 1500, 2000] {
        n.fire_timers(Time::from_millis(ms));
        n.pump(Time::from_millis(ms));
    }
    assert_eq!(n.watched("tick").len(), 4);
}

#[test]
fn head_expressions_and_division_metric() {
    // The cs9 pattern: a ratio of two counts is a float, comparable
    // against a float literal in a downstream rule.
    let mut n = node();
    n.install(
        "m metric@N(A / B) :- pair@N(A, B).
         a alarm@N(M) :- metric@N(M), M < 0.5.",
        Time::ZERO,
    )
    .unwrap();
    n.watch("alarm");
    n.inject(ev("pair", [Value::Int(3), Value::Int(4)]));
    n.pump(Time::ZERO);
    assert!(n.take_watched("alarm").is_empty(), "0.75 raises nothing");
    n.inject(ev("pair", [Value::Int(1), Value::Int(4)]));
    n.pump(Time::ZERO);
    let got = n.take_watched("alarm");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].1.get(1), Some(&Value::Float(0.25)));
}

#[test]
fn list_building_matches_paper_quickstart() {
    let mut n = node();
    n.install(
        "p path@N(P2) :- step@N(B, A, P), P2 := [B, A] + P.",
        Time::ZERO,
    )
    .unwrap();
    n.watch("path");
    n.inject(ev(
        "step",
        [
            Value::str("b"),
            Value::str("a"),
            Value::list([Value::str("a"), Value::str("c")]),
        ],
    ));
    n.pump(Time::ZERO);
    let got = n.take_watched("path");
    assert_eq!(
        got[0].1.get(1),
        Some(&Value::list([
            Value::str("b"),
            Value::str("a"),
            Value::str("a"),
            Value::str("c")
        ]))
    );
}

#[test]
fn remote_delete_rules_route_like_messages() {
    // A delete rule whose head names another node removes the row there.
    let mut sim = SimHarness::with_seed(9);
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    sim.install(
        &b,
        r#"materialize(t, infinity, infinity, keys(1, 2)).
           t@"b"(1). t@"b"(2)."#,
    )
    .unwrap();
    sim.install(&a, r#"d delete t@"b"(X) :- zap@N(X)."#)
        .unwrap();
    sim.run_for(TimeDelta::from_millis(50));
    let now = sim.now();
    assert_eq!(sim.node_mut(&b).table_scan("t", now).len(), 2);
    sim.inject(&a, Tuple::new("zap", [Value::addr("a"), Value::Int(1)]));
    sim.run_for(TimeDelta::from_millis(50));
    let now = sim.now();
    let rows = sim.node_mut(&b).table_scan("t", now);
    assert_eq!(rows.len(), 1, "remote delete must remove exactly t(b, 1)");
    assert_eq!(rows[0].get(1), Some(&Value::Int(2)));
}

#[test]
fn eviction_keeps_newest_rows() {
    let mut n = node();
    n.install("materialize(t, infinity, 3, keys(1, 2)).", Time::ZERO)
        .unwrap();
    for i in 0..10 {
        n.inject(ev("t", [Value::Int(i)]));
    }
    n.pump(Time::ZERO);
    let rows = n.table_scan("t", Time::ZERO);
    assert_eq!(rows.len(), 3);
    let vals: Vec<i64> = rows
        .iter()
        .filter_map(|r| match r.get(1) {
            Some(Value::Int(v)) => Some(*v),
            _ => None,
        })
        .collect();
    assert!(
        vals.contains(&9) && vals.contains(&8) && vals.contains(&7),
        "{vals:?}"
    );
}
