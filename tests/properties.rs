//! Property-based integration tests: system-level invariants under
//! randomized schedules. Case counts are small (each case is a full
//! discrete-event simulation), but the schedules are adversarial in the
//! dimensions that matter: fault timing, network conditions, and seeds.

use p2ql::chord::{build_ring, lookup_oracle, ring_is_ordered, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::snapshot;
use p2ql::net::SimConfig;
use p2ql::types::{DetRng, TimeDelta};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Chord converges to an ID-ordered ring for arbitrary seeds (node
    /// IDs, timer staggering, message ordering all derive from it).
    #[test]
    fn ring_converges_for_any_seed(seed in 1u64..10_000) {
        let mut sim = SimHarness::with_seed(seed);
        let topo = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assert!(ring_is_ordered(&mut sim, &topo), "seed {seed} failed to converge");
    }

    /// Lookups agree with the out-of-band oracle on stable rings, for
    /// arbitrary keys.
    #[test]
    fn lookups_match_oracle(seed in 1u64..1_000, key_seed in 0u64..u64::MAX) {
        let mut sim = SimHarness::with_seed(seed);
        let topo = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assume!(ring_is_ordered(&mut sim, &topo));
        let origin = topo.addrs[1].clone();
        sim.node_mut(&origin).watch("lookupResults");
        let key = DetRng::new(key_seed).ring_id();
        p2ql::chord::issue_lookup(&mut sim, &origin, key, &origin, 42);
        sim.run_for(TimeDelta::from_secs(2));
        let results = p2ql::chord::testbed::collect_lookup_results(
            sim.node_mut(&origin).watched("lookupResults"),
        );
        let got = results.get(&p2ql::types::RingId(42));
        prop_assert!(got.is_some(), "lookup unanswered for key {key}");
        let want = lookup_oracle(&sim, &topo, key).expect("oracle");
        prop_assert_eq!(&got.unwrap().1, &want.1);
    }

    /// The Chandy–Lamport snapshot yields a *consistent* global ring for
    /// arbitrary seeds and (modest) link jitter — the §3.3 headline.
    #[test]
    fn snapshots_are_consistent_under_jitter(seed in 1u64..1_000, jitter_ms in 0u64..40) {
        let mut sim = SimHarness::new(
            SimConfig {
                jitter: TimeDelta::from_millis(jitter_ms),
                ..Default::default()
            },
            Default::default(),
            seed,
        );
        let topo = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assume!(ring_is_ordered(&mut sim, &topo));
        for a in topo.addrs.clone() {
            sim.install(&a, &snapshot::backpointer_program()).unwrap();
            sim.install(&a, &snapshot::snapshot_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(30));
        let init = topo.addrs[0].clone();
        sim.install(&init, &snapshot::initiator_program(&init, 50.0)).unwrap();
        sim.run_for(TimeDelta::from_secs(100));
        // The union of snapped bestSucc pointers closes over all nodes.
        let start = topo.addrs[0].clone();
        let mut cur = start.clone();
        let mut hops = 0;
        loop {
            let next = snapshot::snapped_succ(&mut sim, &cur, 1);
            prop_assert!(next.is_some(), "{cur} missing snapped pointer (seed {seed})");
            cur = next.unwrap();
            hops += 1;
            if cur == start {
                break;
            }
            prop_assert!(hops <= topo.addrs.len(), "snapped ring has a sub-cycle");
        }
        prop_assert_eq!(hops, topo.addrs.len());
    }

    /// A lossy network delays convergence but does not wedge the
    /// runtime: the ring still forms with 10% message loss.
    #[test]
    fn ring_tolerates_loss(seed in 1u64..500) {
        let mut sim = SimHarness::new(
            SimConfig { loss_rate: 0.10, ..Default::default() },
            Default::default(),
            seed,
        );
        let topo = build_ring(&mut sim, 5, &ChordConfig::default());
        // Loss slows joins/stabilization, and sustained loss keeps
        // perturbing the ring with (rare) false liveness suspicions — as
        // on a real lossy network. The property is liveness despite
        // loss: the runtime never wedges and the ring reaches the
        // ordered state at some point. Poll once per virtual minute.
        let mut ok = false;
        for _ in 0..20 {
            sim.run_for(TimeDelta::from_secs(60));
            if ring_is_ordered(&mut sim, &topo) {
                ok = true;
                break;
            }
        }
        prop_assert!(ok, "seed {seed}: ring never converged under 10% loss");
    }

    /// Flow analysis is declarative: stratum assignment (and the whole
    /// cascade cost report) is a function of the rule *set*, not the
    /// order the statements happen to be written in.
    #[test]
    fn flow_report_is_invariant_under_statement_reordering(seed in 0u64..100_000) {
        use p2ql::analysis::{flow_report, AnalysisCtx};
        use p2ql::overlog::parse_program;
        // Fisher–Yates off the case seed (the vendored proptest has no
        // shuffle strategy).
        let mut order: Vec<usize> = (0..11).collect();
        let mut rng = DetRng::derive(seed, "stmt-order");
        for i in (1..order.len()).rev() {
            order.swap(i, rng.below(i as u64 + 1) as usize);
        }
        // A program exercising every analysis dimension: an aggregate
        // chain (two strata), plain table recursion, and a periodic
        // feed.
        let stmts: [&str; 11] = [
            "materialize(raw, 30, 100, keys(1, 2)).",
            "materialize(perNode, 30, 10, keys(1, 2)).",
            "materialize(totals, 30, 1, keys(1)).",
            "materialize(mirror, 30, 100, keys(1, 2)).",
            "r0 raw@N(X) :- ev@N(X).",
            "r1 perNode@N(X, count<*>) :- raw@N(X).",
            "r2 totals@N(sum<C>) :- perNode@N(X, C).",
            "r3 mirror@N(X) :- raw@N(X).",
            "r4 raw@N(X) :- mirror@N(X).",
            "r5 tick@N(E) :- periodic@N(E, 10).",
            "r6 raw@N(E) :- tick@N(E).",
        ];
        let reference = {
            let p = parse_program(&stmts.join("\n")).unwrap();
            flow_report(&[&p], &AnalysisCtx::default())
        };
        let shuffled: Vec<&str> = order.iter().map(|&i| stmts[i]).collect();
        let p = parse_program(&shuffled.join("\n")).unwrap();
        let report = flow_report(&[&p], &AnalysisCtx::default());
        prop_assert_eq!(&report.strata, &reference.strata, "order: {:?}", &order);
        prop_assert_eq!(&report.depth, &reference.depth);
        prop_assert_eq!(&report.amplification, &reference.amplification);
        prop_assert_eq!(&report.roots, &reference.roots);
    }
}
