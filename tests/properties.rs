//! Property-based integration tests: system-level invariants under
//! randomized schedules. Case counts are small (each case is a full
//! discrete-event simulation), but the schedules are adversarial in the
//! dimensions that matter: fault timing, network conditions, and seeds.

use p2ql::chord::{build_ring, lookup_oracle, ring_is_ordered, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::snapshot;
use p2ql::net::SimConfig;
use p2ql::types::{DetRng, TimeDelta};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Chord converges to an ID-ordered ring for arbitrary seeds (node
    /// IDs, timer staggering, message ordering all derive from it).
    #[test]
    fn ring_converges_for_any_seed(seed in 1u64..10_000) {
        let mut sim = SimHarness::with_seed(seed);
        let topo = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assert!(ring_is_ordered(&mut sim, &topo), "seed {seed} failed to converge");
    }

    /// Lookups agree with the out-of-band oracle on stable rings, for
    /// arbitrary keys.
    #[test]
    fn lookups_match_oracle(seed in 1u64..1_000, key_seed in 0u64..u64::MAX) {
        let mut sim = SimHarness::with_seed(seed);
        let topo = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assume!(ring_is_ordered(&mut sim, &topo));
        let origin = topo.addrs[1].clone();
        sim.node_mut(&origin).watch("lookupResults");
        let key = DetRng::new(key_seed).ring_id();
        p2ql::chord::issue_lookup(&mut sim, &origin, key, &origin, 42);
        sim.run_for(TimeDelta::from_secs(2));
        let results = p2ql::chord::testbed::collect_lookup_results(
            sim.node_mut(&origin).watched("lookupResults"),
        );
        let got = results.get(&p2ql::types::RingId(42));
        prop_assert!(got.is_some(), "lookup unanswered for key {key}");
        let want = lookup_oracle(&sim, &topo, key).expect("oracle");
        prop_assert_eq!(&got.unwrap().1, &want.1);
    }

    /// The Chandy–Lamport snapshot yields a *consistent* global ring for
    /// arbitrary seeds and (modest) link jitter — the §3.3 headline.
    #[test]
    fn snapshots_are_consistent_under_jitter(seed in 1u64..1_000, jitter_ms in 0u64..40) {
        let mut sim = SimHarness::new(
            SimConfig {
                jitter: TimeDelta::from_millis(jitter_ms),
                ..Default::default()
            },
            Default::default(),
            seed,
        );
        let topo = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        prop_assume!(ring_is_ordered(&mut sim, &topo));
        for a in topo.addrs.clone() {
            sim.install(&a, &snapshot::backpointer_program()).unwrap();
            sim.install(&a, &snapshot::snapshot_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(30));
        let init = topo.addrs[0].clone();
        sim.install(&init, &snapshot::initiator_program(&init, 50.0)).unwrap();
        sim.run_for(TimeDelta::from_secs(100));
        // The union of snapped bestSucc pointers closes over all nodes.
        let start = topo.addrs[0].clone();
        let mut cur = start.clone();
        let mut hops = 0;
        loop {
            let next = snapshot::snapped_succ(&mut sim, &cur, 1);
            prop_assert!(next.is_some(), "{cur} missing snapped pointer (seed {seed})");
            cur = next.unwrap();
            hops += 1;
            if cur == start {
                break;
            }
            prop_assert!(hops <= topo.addrs.len(), "snapped ring has a sub-cycle");
        }
        prop_assert_eq!(hops, topo.addrs.len());
    }

    /// A lossy network delays convergence but does not wedge the
    /// runtime: the ring still forms with 10% message loss.
    #[test]
    fn ring_tolerates_loss(seed in 1u64..500) {
        let mut sim = SimHarness::new(
            SimConfig { loss_rate: 0.10, ..Default::default() },
            Default::default(),
            seed,
        );
        let topo = build_ring(&mut sim, 5, &ChordConfig::default());
        // Loss slows joins/stabilization, and sustained loss keeps
        // perturbing the ring with (rare) false liveness suspicions — as
        // on a real lossy network. The property is liveness despite
        // loss: the runtime never wedges and the ring reaches the
        // ordered state at some point. Poll once per virtual minute.
        let mut ok = false;
        for _ in 0..20 {
            sim.run_for(TimeDelta::from_secs(60));
            if ring_is_ordered(&mut sim, &topo) {
                ok = true;
                break;
            }
        }
        prop_assert!(ok, "seed {seed}: ring never converged under 10% loss");
    }
}
