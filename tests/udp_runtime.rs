//! Nodes over real UDP sockets — the paper's actual deployment substrate
//! (one marshaled tuple per datagram, OS processes on a LAN; here, two
//! threads on loopback).

use p2ql::core::{Node, NodeConfig};
use p2ql::net::{UdpRecv, UdpTransport};
use p2ql::types::{Addr, Time, Tuple, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn drive(mut node: Node, transport: UdpTransport, stop: Arc<AtomicBool>) -> Node {
    let epoch = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        let t = Time(epoch.elapsed().as_micros() as u64);
        node.fire_timers(t);
        while let UdpRecv::Envelope(env) = transport.try_recv().expect("socket healthy") {
            node.deliver(env, t);
        }
        for env in node.pump(t) {
            let _ = transport.send(&env);
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Final drain.
    let t = Time(epoch.elapsed().as_micros() as u64);
    while let Ok(UdpRecv::Envelope(env)) = transport.try_recv() {
        node.deliver(env, t);
    }
    let _ = node.pump(t);
    node
}

#[test]
fn two_udp_nodes_exchange_tuples() {
    // Bind first so we know the real ports, then name the nodes by them.
    let ta = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let tb = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let a_addr = ta.local_addr().unwrap();
    let b_addr = tb.local_addr().unwrap();

    let mut a = Node::new(
        a_addr.clone(),
        NodeConfig {
            stagger_timers: false,
            ..Default::default()
        },
    );
    // a periodically sends a counter tuple to b.
    a.install(
        &format!(
            r#"d1 tick@N(E) :- periodic@N(E, 1).
               d2 report@"{b_addr}"(E) :- tick@N(E)."#
        ),
        Time::ZERO,
    )
    .unwrap();

    let mut b = Node::new(b_addr.clone(), NodeConfig::default());
    b.install(
        "materialize(reports, infinity, infinity, keys(1, 2)).
         r1 reports@N(E) :- report@N(E).",
        Time::ZERO,
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let ha = {
        let stop = stop.clone();
        std::thread::spawn(move || drive(a, ta, stop))
    };
    let hb = {
        let stop = stop.clone();
        std::thread::spawn(move || drive(b, tb, stop))
    };
    std::thread::sleep(Duration::from_millis(3_500));
    stop.store(true, Ordering::Relaxed);
    let a = ha.join().unwrap();
    let mut b = hb.join().unwrap();

    let now = Time(u64::MAX / 2);
    let reports = b.table_scan("reports", now).len();
    assert!(reports >= 2, "b received {reports} reports over UDP");
    assert!(a.metrics().msgs_sent >= 2);
    assert!(b.metrics().msgs_received >= 2);
}

#[test]
fn udp_node_survives_hostile_datagrams() {
    let t = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    let addr = t.local_addr().unwrap();
    let mut node = Node::new(addr.clone(), NodeConfig::default());
    node.install("r1 out@N(X) :- in@N(X).", Time::ZERO).unwrap();
    node.watch("out");

    // Blast garbage at the node's socket, then a valid envelope.
    let raw = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    for _ in 0..20 {
        raw.send_to(&[0xDE, 0xAD, 0xBE, 0xEF, 0xFF], addr.as_str())
            .unwrap();
    }
    let peer = UdpTransport::bind(&Addr::new("127.0.0.1:0")).unwrap();
    peer.send(&p2ql::net::Envelope::new(
        Tuple::new("in", [Value::Addr(addr.clone()), Value::Int(1)]),
        peer.local_addr().unwrap(),
        addr.clone(),
    ))
    .unwrap();

    // Drain: garbage reported as malformed, the good frame delivered.
    let mut malformed = 0;
    let mut delivered = 0;
    let deadline = Instant::now() + Duration::from_secs(3);
    while Instant::now() < deadline && delivered == 0 {
        match t.recv_timeout(Duration::from_millis(200)).unwrap() {
            UdpRecv::Envelope(env) => {
                node.deliver(env, Time::ZERO);
                delivered += 1;
            }
            UdpRecv::Malformed { .. } => malformed += 1,
            UdpRecv::Empty => {}
        }
    }
    node.pump(Time::ZERO);
    assert!(malformed >= 1, "garbage must surface as malformed frames");
    assert_eq!(
        node.watched("out").len(),
        1,
        "the good frame still processed"
    );
}
