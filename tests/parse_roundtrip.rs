//! Property tests for the OverLog front end: a randomly generated
//! program must survive parse → pretty-print → parse with its AST
//! intact (spans are positions, not semantics — `PartialEq` on AST
//! nodes ignores them), and the spans the parser attaches must be
//! coherent: non-empty, within the statement, and monotonically
//! increasing in source order. The diagnostics pipeline renders caret
//! snippets straight from these spans, so a regression here turns
//! into diagnostics underlining the wrong source text.

use p2ql::overlog::ast::{Program, Rule, Statement};
use p2ql::overlog::{parse_program, pretty, Span};
use proptest::prelude::*;
use proptest::TestRng;

/// A tiny grammar-directed source generator. It emits *syntactically*
/// valid OverLog (the parser must accept it); it makes no attempt at
/// semantic validity — unbound variables, arity drift, and reserved
/// names are the analyzer's business, not the parser's.
struct Gen<'a> {
    rng: &'a mut TestRng,
}

impl Gen<'_> {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    fn pick<'x>(&mut self, xs: &[&'x str]) -> &'x str {
        xs[self.rng.below(xs.len() as u64) as usize]
    }

    fn rel(&mut self) -> &'static str {
        self.pick(&[
            "link", "path", "bestSucc", "finger", "node", "lookUp", "probe", "seen", "alarm",
        ])
    }

    fn var(&mut self) -> &'static str {
        self.pick(&["NAddr", "X", "Y", "Z", "K", "E", "SAddr", "W", "P"])
    }

    fn value(&mut self) -> String {
        match self.below(4) {
            0 => format!("{}", self.below(1000)),
            1 => format!("0x{:x}", self.below(0xffff).max(1)),
            2 => format!("{:?}", self.pick(&["n1:0", "-", "abc"])),
            // A fractional literal: round-trips through `{:?}`.
            _ => format!("{}.5", self.below(50)),
        }
    }

    fn expr(&mut self, depth: u64) -> String {
        if depth == 0 {
            return if self.below(2) == 0 {
                self.var().to_string()
            } else {
                self.value()
            };
        }
        match self.below(7) {
            0 | 1 => self.var().to_string(),
            2 => self.value(),
            3 => {
                let op = self.pick(&["+", "-", "*", "/", "%"]);
                format!("{} {} {}", self.expr(depth - 1), op, self.expr(depth - 1))
            }
            4 => format!("({})", self.expr(depth - 1)),
            5 => format!(
                "f_{}({})",
                self.pick(&["now", "rand", "sha1"]),
                self.expr(0)
            ),
            _ => format!("[{}, {}]", self.expr(0), self.expr(0)),
        }
    }

    /// A boolean body term: comparison, conjunction, negation, or a
    /// ring-interval test.
    fn cond(&mut self, depth: u64) -> String {
        match self.below(if depth == 0 { 2 } else { 4 }) {
            0 | 1 => {
                let op = self.pick(&["==", "!=", "<", "<=", ">", ">="]);
                format!("{} {op} {}", self.expr(1), self.expr(1))
            }
            2 => {
                let op = self.pick(&["&&", "||"]);
                format!("({}) {op} ({})", self.cond(depth - 1), self.cond(depth - 1))
            }
            _ => {
                let lo = if self.below(2) == 0 { '(' } else { '[' };
                let hi = if self.below(2) == 0 { ')' } else { ']' };
                format!(
                    "{} in {lo}{}, {}{hi}",
                    self.var(),
                    self.expr(0),
                    self.expr(0)
                )
            }
        }
    }

    fn pred(&mut self, allow_wildcard: bool) -> String {
        let name = self.rel();
        let nargs = self.below(3) + 1;
        let args: Vec<String> = (0..nargs)
            .map(|_| match self.below(4) {
                0 if allow_wildcard => "_".to_string(),
                1 => self.value(),
                _ => self.var().to_string(),
            })
            .collect();
        if self.below(3) > 0 {
            format!("{name}@{}({})", self.var(), args.join(", "))
        } else {
            format!("{name}({})", args.join(", "))
        }
    }

    fn head(&mut self) -> String {
        let mut p = self.pred(false);
        // Occasionally an aggregate as the last head field.
        if self.below(4) == 0 {
            let agg = match self.pick(&["count<*>", "min", "max", "sum"]) {
                "count<*>" => "count<*>".to_string(),
                f => format!("{f}<{}>", self.var()),
            };
            let cut = p.rfind(')').unwrap();
            let sep = if p[..cut].ends_with('(') { "" } else { ", " };
            p = format!("{}{sep}{agg})", &p[..cut]);
        }
        p
    }

    fn rule(&mut self, idx: u64) -> String {
        let label = if self.below(4) > 0 {
            format!("r{idx} ")
        } else {
            String::new()
        };
        let delete = if self.below(8) == 0 { "delete " } else { "" };
        let mut body: Vec<String> = Vec::new();
        let npreds = self.below(3) + 1;
        for i in 0..npreds {
            if i == 0 && self.below(4) == 0 {
                body.push(format!(
                    "periodic@{}(E, {})",
                    self.var(),
                    self.below(90) + 1
                ));
            } else {
                body.push(self.pred(true));
            }
        }
        for _ in 0..self.below(3) {
            if self.below(2) == 0 {
                body.push(self.cond(1));
            } else {
                body.push(format!("{} := {}", self.var(), self.expr(2)));
            }
        }
        format!("{label}{delete}{} :- {}.", self.head(), body.join(", "))
    }

    fn fact(&mut self) -> String {
        let nargs = self.below(3) + 1;
        let args: Vec<String> = (0..nargs).map(|_| self.value()).collect();
        format!(
            "{}@{:?}({}).",
            self.rel(),
            self.pick(&["n1:0", "n2:0"]),
            args.join(", ")
        )
    }

    fn materialize(&mut self) -> String {
        let lifetime = if self.below(3) == 0 {
            "infinity".to_string()
        } else {
            format!("{}", self.below(600) + 1)
        };
        let size = if self.below(3) == 0 {
            "infinity".to_string()
        } else {
            format!("{}", self.below(100) + 1)
        };
        let nkeys = self.below(3) + 1;
        let keys: Vec<String> = (1..=nkeys).map(|k| k.to_string()).collect();
        format!(
            "materialize({}, {lifetime}, {size}, keys({})).",
            self.rel(),
            keys.join(", ")
        )
    }

    fn program(&mut self) -> String {
        let n = self.below(6) + 1;
        let mut out = String::new();
        for i in 0..n {
            let stmt = match self.below(5) {
                0 => self.materialize(),
                1 => self.fact(),
                _ => self.rule(i),
            };
            out.push_str(&stmt);
            // Vary inter-statement whitespace: spans must track real
            // offsets, not a statement counter.
            out.push_str(self.pick(&["\n", "\n\n", "  \n", " "]));
        }
        out
    }
}

fn stmt_span(s: &Statement) -> Span {
    match s {
        Statement::Materialize(m) => m.span,
        Statement::Rule(r) => r.span,
    }
}

/// Spans are coherent: non-empty, statement anchors strictly ordered
/// by start offset (a statement's span anchors at its first token), and
/// within each rule the head and body-term spans strictly increase left
/// to right — the order the diagnostics renderer relies on.
fn assert_spans_monotone(p: &Program, src: &str) -> Result<(), TestCaseError> {
    let mut prev_start: Option<u32> = None;
    for s in &p.statements {
        let sp = stmt_span(s);
        prop_assert!(sp.start < sp.end, "empty statement span {sp:?} in:\n{src}");
        if let Some(prev) = prev_start {
            prop_assert!(
                sp.start > prev,
                "statement spans not increasing ({prev} then {}) in:\n{src}",
                sp.start
            );
        }
        prev_start = Some(sp.start);
        if let Statement::Rule(r) = s {
            assert_rule_spans(r, sp, src)?;
        }
    }
    Ok(())
}

fn assert_rule_spans(r: &Rule, sp: Span, src: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        r.head.span.start >= sp.start,
        "head span {:?} before rule anchor {sp:?} in:\n{src}",
        r.head.span
    );
    let mut prev_end = r.head.span.end;
    for t in &r.body {
        let ts = t.span();
        prop_assert!(ts.start < ts.end, "empty term span {ts:?} in:\n{src}");
        prop_assert!(
            ts.start >= prev_end,
            "body term span {ts:?} not after the previous term (end {prev_end}) in:\n{src}"
        );
        prev_end = ts.end;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// parse → pretty → parse is the identity on the AST, and both
    /// parses attach monotonically increasing spans.
    #[test]
    fn parse_pretty_parse_round_trips(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::new(seed);
        let src = Gen { rng: &mut rng }.program();
        let p1 = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::Fail(format!(
                "generator emitted unparseable source ({e}):\n{src}"
            ))),
        };
        assert_spans_monotone(&p1, &src)?;

        let printed = pretty::program_to_string(&p1);
        let p2 = match parse_program(&printed) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::Fail(format!(
                "pretty output unparseable ({e}):\n{printed}\nfrom:\n{src}"
            ))),
        };
        prop_assert_eq!(&p1, &p2);
        assert_spans_monotone(&p2, &printed)?;
    }
}
