//! Introspection tour: querying the system about itself (§2.1).
//!
//! P2's reflection model exposes a node's own tables, rules, and
//! counters *as tables*, so monitoring queries range over system and
//! application state in the same language. This example installs a small
//! application, then installs a second program whose rules read
//! `sysTable` / `sysRule` / `sysStat` — an OverLog query about the
//! OverLog runtime — plus a query over the execution-trace tables.
//!
//! Run with: `cargo run --example introspection_tour`

use p2ql::core::{NodeConfig, SimHarness};
use p2ql::types::{TimeDelta, Tuple, Value};

fn main() {
    let mut config = NodeConfig {
        tracing: true,
        stagger_timers: false,
        ..Default::default()
    };
    config.trace.log_events = true; // §2.1's arrival/removal log
    let mut sim = SimHarness::new(Default::default(), config, 3);
    let a = sim.add_node("alpha");

    // A small application: a counter table bumped by a periodic rule.
    sim.install(
        &a,
        r#"
        materialize(hits, infinity, infinity, keys(1, 2)).
        app1 hits@N(E) :- periodic@N(E, 2).
        "#,
    )
    .expect("app installs");
    sim.run_for(TimeDelta::from_secs(11));

    // Reflection refresh is on demand (it costs something, so it is paid
    // when someone looks — see p2-core::introspect).
    let now = sim.now();
    sim.node_mut(&a).refresh_introspection(now);

    // A *meta* program: which of my tables hold the most rows? Which of
    // my rules have fired? Note these are ordinary OverLog rules.
    sim.install(
        &a,
        r#"
        meta1 bigTable@N(Name, Rows) :- metaProbe@N(), sysTable@N(Name, Rows, MaxR, Life), Rows > 0.
        meta2 busyRule@N(Id, Fired) :- metaProbe@N(), sysRule@N(Id, Src, Fired, Outs, Errs), Fired > 0.
        meta3 traceVolume@N(Rule, count<*>) :- metaProbe@N(), ruleExec@N(Rule, In, Out, T1, T2, IsEv).
        meta4 arrivals@N(Rel, count<*>) :- metaProbe@N(), eventLog@N(Rel, Op, T), Op == "arrive".
        "#,
    )
    .expect("meta installs");
    for name in ["bigTable", "busyRule", "traceVolume", "arrivals"] {
        sim.node_mut(&a).watch(name);
    }
    sim.inject(&a, Tuple::new("metaProbe", [Value::addr("alpha")]));
    sim.run_for(TimeDelta::from_millis(100));

    println!("tables with rows:");
    for (_, t) in sim.node_mut(&a).take_watched("bigTable") {
        println!("  {t}");
    }
    println!("\nrules that fired:");
    for (_, t) in sim.node_mut(&a).take_watched("busyRule") {
        println!("  {t}");
    }
    println!("\nruleExec volume by rule (execution trace, queried from OverLog):");
    for (_, t) in sim.node_mut(&a).take_watched("traceVolume") {
        println!("  {t}");
    }
    println!("\ntuple arrivals by relation (the §2.1 event log):");
    for (_, t) in sim.node_mut(&a).take_watched("arrivals") {
        println!("  {t}");
    }

    // The app keeps running; the hits table kept counting while we
    // were introspecting.
    let now = sim.now();
    let rows = sim.node_mut(&a).table_scan("hits", now);
    println!("\napplication unaffected: {} hits recorded", rows.len());
    assert!(rows.len() >= 5);
}
