//! Higher-order monitoring (§1.3): reacting to a watchpoint by
//! installing *more queries*.
//!
//! *"This leads to higher-order automatic tracing of distributed
//! execution, whereby the system can be programmed to react to events by
//! installing new triggers itself, for example to provide more detailed
//! information about a particular area of the system."*
//!
//! The control loop here: a cheap, always-on watchpoint (the passive
//! ring check `rp4`) runs everywhere. When it first fires, the operator
//! loop reacts by deploying the *expensive* detectors — active probing
//! and the full oscillation suite — only on the implicated neighborhood,
//! and by enabling execution tracing on the node that raised the alarm.
//!
//! Run with: `cargo run --example autonomic`

use p2ql::chord::{build_ring, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::{oscillation, ring};
use p2ql::types::TimeDelta;

fn main() {
    let mut sim = SimHarness::with_seed(77);
    let topo = build_ring(&mut sim, 8, &ChordConfig::default());
    println!("stabilizing ring...");
    sim.run_for(TimeDelta::from_secs(200));

    // Tier 1: the cheap watchpoint, everywhere, forever.
    for a in topo.addrs.clone() {
        sim.install(&a, &ring::passive_check_program())
            .expect("rp4");
        sim.node_mut(&a).watch(ring::ALARM);
    }
    println!(
        "tier-1 watchpoint (rp4) deployed on all {} nodes",
        topo.addrs.len()
    );

    // Fault: flap a node to create ring inconsistencies.
    let victim = topo
        .live_sorted(&sim)
        .into_iter()
        .map(|(_, a)| a)
        .find(|a| a != topo.landmark())
        .expect("victim");
    println!("flapping {victim} in the background...");

    let mut escalated = false;
    for round in 0..14 {
        if round % 2 == 0 {
            sim.crash(&victim);
        } else {
            sim.revive(&victim);
        }
        sim.run_for(TimeDelta::from_secs(12));

        // The operator loop: poll tier-1 alarms; on first evidence,
        // escalate by installing tier-2 monitors — at runtime, only
        // where needed.
        if !escalated {
            for a in topo.addrs.clone() {
                let alarms = sim.node_mut(&a).take_watched(ring::ALARM);
                if alarms.is_empty() {
                    continue;
                }
                println!(
                    "  [{}] tier-1 alarm at {a}: {} inconsistentPred event(s) — escalating",
                    sim.now(),
                    alarms.len()
                );
                // Tier 2: heavier scrutiny on the implicated node only.
                sim.install(&a, &ring::active_probe_program(5))
                    .expect("rp1-3");
                sim.install(&a, &oscillation::full_program())
                    .expect("os1-9");
                sim.node_mut(&a).watch(oscillation::OSCILL);
                sim.node_mut(&a).set_tracing(true);
                println!("      installed rp1-3 + os1-9 and enabled execution tracing at {a}");
                escalated = true;
                break;
            }
        }
    }
    sim.revive(&victim);
    sim.run_for(TimeDelta::from_secs(60));

    assert!(escalated, "tier-1 watchpoint never fired");
    // Show what tier 2 gathered.
    let mut findings = 0;
    for a in topo.addrs.clone() {
        let oscills = sim.node_mut(&a).take_watched(oscillation::OSCILL);
        for (t, tup) in &oscills {
            println!("  [{t}] tier-2 at {a}: {tup}");
        }
        findings += oscills.len();
        let now = sim.now();
        let traced = sim.node_mut(&a).table_scan("ruleExec", now).len();
        if traced > 0 {
            println!("  {a}: {traced} ruleExec rows available for forensics");
        }
    }
    println!("\nautonomic escalation OK ({findings} tier-2 findings)");
}
