//! Consistent snapshots and queries over them (§3.3).
//!
//! Runs Chord, installs the Chandy–Lamport rules, takes periodic
//! snapshots, and then evaluates **lookups over the frozen snapshot** —
//! the paper's fix for consistency-probe false positives: every probe
//! lookup sees the same global state, while live lookups keep running
//! against live tables with no restart.
//!
//! Run with: `cargo run --example snapshot_forensics`

use p2ql::chord::{build_ring, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::snapshot::{
    backpointer_program, initiator_program, issue_snapshot_lookup, phase_of, snapped_succ,
    snapshot_lookup_program, snapshot_program,
};
use p2ql::types::{DetRng, TimeDelta, Value};

fn main() {
    let mut sim = SimHarness::with_seed(7);
    let topo = build_ring(&mut sim, 6, &ChordConfig::default());
    println!("stabilizing 6-node ring...");
    sim.run_for(TimeDelta::from_secs(240));

    for a in topo.addrs.clone() {
        sim.install(&a, &backpointer_program()).expect("bp");
        sim.install(&a, &snapshot_program()).expect("sr");
        sim.install(&a, &snapshot_lookup_program()).expect("l*s");
    }
    sim.run_for(TimeDelta::from_secs(30));
    let initiator = topo.addrs[0].clone();
    sim.install(&initiator, &initiator_program(&initiator, 60.0))
        .expect("sr1");
    println!("snapshot initiator installed at {initiator} (every 60s)");
    sim.run_for(TimeDelta::from_secs(120));

    // Inspect snapshot 1: phase and frozen ring on every node.
    println!("\nsnapshot 1 state:");
    for a in topo.addrs.clone() {
        let phase = phase_of(&mut sim, &a, 1);
        let succ = snapped_succ(&mut sim, &a, 1);
        println!("  {a}: phase={phase:?} snappedSucc={succ:?}");
    }

    // Walk the frozen ring: it must close over all nodes — a consistent
    // global state even though nodes snapped at different instants.
    let mut cur = topo.addrs[0].clone();
    let mut hops = 0;
    loop {
        cur = snapped_succ(&mut sim, &cur, 1).expect("snapped pointer");
        hops += 1;
        if cur == topo.addrs[0] || hops > topo.addrs.len() {
            break;
        }
    }
    println!(
        "\nfrozen ring closes in {hops} hops (nodes: {})",
        topo.addrs.len()
    );
    assert_eq!(hops, topo.addrs.len(), "snapshot must be a consistent ring");

    // Lookups over the snapshot, issued from one node.
    let origin = topo.addrs[2].clone();
    sim.node_mut(&origin).watch("sLookupResults");
    let mut rng = DetRng::new(99);
    for i in 0..4 {
        issue_snapshot_lookup(&mut sim, &origin, 1, rng.ring_id(), &origin, 800 + i);
    }
    sim.run_for(TimeDelta::from_secs(3));
    println!("\nlookups over snapshot 1:");
    for (t, tup) in sim.node_mut(&origin).take_watched("sLookupResults") {
        let owner = tup.get(4).and_then(Value::to_addr);
        println!("  [{t}] key {} -> {:?}", tup.get(2).unwrap(), owner);
    }
    println!("\nsnapshot forensics OK");
}
