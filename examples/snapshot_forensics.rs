//! Time-travel forensics over the epoch-segmented archive
//! (DESIGN.md §2.11).
//!
//! The paper's §3.3 snapshots freeze a *consistent present*; the
//! archive tier answers questions about the *past*. This demo stages an
//! incident on a forensic-mode Chord ring — one node's successor
//! pointer is corrupted, stabilization heals it — then lets **every**
//! live lifetime expire: the bad `bestSucc` version, the `ruleExec`
//! provenance, all of it is gone from the live tables. Only then does
//! anyone investigate:
//!
//! * an ordinary OverLog rule using the reserved `past("rel", T0, T1,
//!   fields...)` predicate ranges over archived history — installed
//!   long after the evidence expired;
//! * the `monitor::retrospect` detectors reconstruct the ring at chosen
//!   past instants and re-check the §3.1 invariants, pinning *when* the
//!   ring was malformed and *which* node oscillated.
//!
//! Run with: `cargo run --example snapshot_forensics`

use p2ql::chord::{build_ring, ChordConfig};
use p2ql::core::{NodeConfig, SimHarness};
use p2ql::monitor::retrospect;
use p2ql::net::SimConfig;
use p2ql::types::{Time, TimeDelta, Tuple, Value};

fn main() {
    // Forensic mode: tracing on, every dropped row version spills into
    // the archive instead of vanishing.
    let mut sim = SimHarness::new(SimConfig::default(), NodeConfig::forensic(), 7);
    let ring = build_ring(&mut sim, 5, &ChordConfig::default());
    println!("stabilizing 5-node forensic ring...");
    sim.run_for(TimeDelta::from_secs(180));
    let healthy = sim.now();

    // The incident: at t+1s a node's successor pointer is corrupted to
    // skip a live member. Stabilization will quietly heal it.
    sim.run_for(TimeDelta::from_secs(1));
    let sorted = ring.live_sorted(&sim);
    let victim = sorted[0].1.clone();
    let wrong = sorted[2].1.clone();
    sim.inject(
        &victim,
        Tuple::new(
            "bestSucc",
            [
                Value::Addr(victim.clone()),
                Value::Id(ring.id_of(&wrong)),
                Value::Addr(wrong.clone()),
            ],
        ),
    );
    let incident = sim.now();
    println!("incident: {victim} -> {wrong} at {incident}");

    // Outlive the evidence: bestSucc rows live ~16 s, ruleExec 120 s.
    // Everything the incident touched has expired out of the live tier.
    sim.run_for(TimeDelta::from_secs(150));
    let now = sim.now();
    let stale = sim
        .node_mut(&victim)
        .history_scan("bestSucc", healthy, incident, now)
        .expect("archive scan")
        .len();
    println!("at {now}: incident-era bestSucc versions live=0, archived={stale}");

    // Investigation path 1: an OverLog query over history, installed
    // only now. `past` scans archive segments plus any still-live rows
    // whose validity interval intersects [T0, T1].
    sim.install(
        &victim,
        r#"f1 wasSucc@N(T0, S) :- probe@N(T0, T1), past@N("bestSucc", T0, T1, N, I, S)."#,
    )
    .expect("forensic query installs");
    sim.node_mut(&victim).watch("wasSucc");
    sim.inject(
        &victim,
        Tuple::new(
            "probe",
            [
                Value::Addr(victim.clone()),
                Value::Time(healthy),
                Value::Time(incident + TimeDelta::from_secs(5)),
            ],
        ),
    );
    println!("\nevery successor {victim} held around the incident:");
    let mut held: Vec<String> = sim
        .node_mut(&victim)
        .take_watched("wasSucc")
        .into_iter()
        .filter_map(|(_, t)| t.get(2).map(|s| s.to_string()))
        .collect();
    held.dedup();
    println!("  {}", held.join(", "));
    assert!(
        held.iter().any(|s| *s == wrong.to_string()),
        "the corrupt pointer must be in the archived history"
    );

    // Investigation path 2: reconstruct the ring at chosen instants and
    // re-check the §3.1 invariants retrospectively.
    println!("\nring well-formed (§3.1.1), reconstructed from the archive:");
    for (label, t) in [("before", healthy), ("during", incident)] {
        let ok = retrospect::ring_was_well_formed_at(&mut sim, &ring, t);
        let viols = retrospect::ordering_violations_at(&mut sim, &ring, t);
        println!(
            "  {label} ({t}): well_formed={ok} violations={}",
            viols.len()
        );
        for v in viols {
            println!(
                "    {} pointed at {}, expected {}",
                v.node, v.actual, v.expected
            );
        }
    }
    assert!(retrospect::ring_was_well_formed_at(
        &mut sim, &ring, healthy
    ));
    assert!(!retrospect::ordering_violations_at(&mut sim, &ring, incident).is_empty());

    let end = sim.now();
    let osc = retrospect::oscillators_in(&mut sim, &ring, Time::ZERO, end, 2);
    println!("\noscillators (§3.1.3) over the whole run:");
    for (addr, flips) in &osc {
        println!("  {addr}: successor changed {flips} times");
    }
    assert!(osc.iter().any(|(a, _)| *a == victim), "victim must show up");

    println!("\ntime-travel forensics OK");
}
