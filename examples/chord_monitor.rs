//! Chord with on-line monitors: the paper's §3.1 story in one run.
//!
//! Starts an 8-node Chord ring, lets it stabilize, then deploys — on the
//! fly, with the system running — the ring well-formedness probes
//! (`rp1`–`rp4`), the ID-ordering traversal (`ri2`–`ri7`), and the
//! oscillation detectors (`os1`–`os9`). A node is then crashed and the
//! alarm streams are printed as they appear.
//!
//! Run with: `cargo run --example chord_monitor`

use p2ql::chord::{build_ring, ring_is_ordered, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::{ordering, oscillation, ring};
use p2ql::types::TimeDelta;

fn main() {
    let mut sim = SimHarness::with_seed(2026);
    let topo = build_ring(&mut sim, 8, &ChordConfig::default());
    println!("stabilizing 8-node ring...");
    sim.run_for(TimeDelta::from_secs(180));
    println!("ring ordered: {}", ring_is_ordered(&mut sim, &topo));

    // Piecemeal, on-line deployment of three monitor families.
    for a in topo.addrs.clone() {
        sim.install(&a, &ring::active_probe_program(7))
            .expect("rp1-3");
        sim.install(&a, &ring::passive_check_program())
            .expect("rp4");
        sim.install(&a, &ordering::traversal_program())
            .expect("ri2-7");
        sim.install(&a, &oscillation::full_program())
            .expect("os1-9");
        sim.node_mut(&a).watch(ring::ALARM);
        sim.node_mut(&a).watch(ordering::PROBLEM);
        sim.node_mut(&a).watch(oscillation::OSCILL);
        sim.node_mut(&a).watch(oscillation::REPEAT);
    }
    // Continuous traversal regression test from one initiator (§1.3's
    // "watchpoints left in the system").
    let initiator = topo.addrs[0].clone();
    sim.install(&initiator, &ordering::periodic_initiator_program(30))
        .expect("traversal driver");
    sim.node_mut(&initiator).watch(ordering::OK);

    println!("running healthy for 120s with all monitors installed...");
    sim.run_for(TimeDelta::from_secs(120));
    let healthy_alarms: usize = topo
        .addrs
        .clone()
        .iter()
        .map(|a| {
            sim.node_mut(a).watched(ring::ALARM).len()
                + sim.node_mut(a).watched(ordering::PROBLEM).len()
                + sim.node_mut(a).watched(oscillation::OSCILL).len()
        })
        .sum();
    let ok_traversals = sim.node_mut(&initiator).watched(ordering::OK).len();
    println!("  healthy phase: {healthy_alarms} alarms, {ok_traversals} clean traversals");

    // Now flap a node and watch the detectors light up.
    let victim = topo
        .live_sorted(&sim)
        .into_iter()
        .map(|(_, a)| a)
        .find(|a| a != topo.landmark())
        .expect("victim");
    println!("flapping {victim} (crash/revive cycles)...");
    for _ in 0..6 {
        sim.crash(&victim);
        sim.run_for(TimeDelta::from_secs(16));
        sim.revive(&victim);
        sim.run_for(TimeDelta::from_secs(8));
    }
    sim.run_for(TimeDelta::from_secs(60));

    for a in topo.addrs.clone() {
        for (t, tup) in sim.node_mut(&a).take_watched(oscillation::OSCILL) {
            println!("  [{t}] {a}: oscillation {tup}");
        }
        for (t, tup) in sim.node_mut(&a).take_watched(oscillation::REPEAT) {
            println!("  [{t}] {a}: REPEAT OSCILLATOR {tup}");
        }
        for (t, tup) in sim.node_mut(&a).take_watched(ring::ALARM) {
            println!("  [{t}] {a}: inconsistent pred {tup}");
        }
    }
    println!("done — the detectors found the flapping node on-line.");
}
