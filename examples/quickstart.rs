//! Quickstart: the paper's §2 routing example, end to end.
//!
//! Builds a three-node network whose links are facts and whose routing
//! table is the continuous query
//!
//! ```text
//! path(B, C, [B, A] + P, W + Y) :- link(A, B, W), path(A, C, P, Y).
//! ```
//!
//! — the exact rule the paper uses to introduce OverLog. Every node ends
//! up with its reachable destinations, the hop lists, and (via a `min`
//! aggregate) the best path cost, all maintained as materialized views
//! over the link state.
//!
//! Run with: `cargo run --example quickstart`

use p2ql::core::SimHarness;
use p2ql::types::{TimeDelta, Value};

const PROGRAM: &str = r#"
materialize(link, infinity, infinity, keys(1, 2)).
materialize(path, infinity, infinity, keys(1, 2, 3)).
materialize(bestPathCost, infinity, infinity, keys(1, 2)).

/* One-hop paths: a link from A to B gives B a path back to A. */
p0 path(B, A, [B, A], W) :- link(A, B, W).

/* The paper's rule: extend A's paths with the link [B, A]. */
p1 path(B, C, [B, A] + P, W + Y) :- link(A, B, W), path(A, C, P, Y).

/* Best-cost view per destination. */
b1 bestPathCost(A, C, min<W>) :- path(A, C, P, W).
"#;

fn main() {
    let mut sim = SimHarness::with_seed(1);
    for name in ["a", "b", "c"] {
        sim.add_node(name);
    }
    // Install the program, then the link facts — an acyclic weighted
    // graph: a -> b (1), b -> c (2), a -> c (9).
    let addrs: Vec<_> = sim.addrs().to_vec();
    for addr in &addrs {
        sim.install(addr, PROGRAM).expect("program installs");
    }
    let links = r#"
        link@"a"("b", 1).
        link@"b"("c", 2).
        link@"a"("c", 9).
    "#;
    sim.install(&addrs[0], links).expect("links install");

    // Let the distributed view converge (each hop costs one link latency).
    sim.run_for(TimeDelta::from_millis(200));

    let now = sim.now();
    for addr in &addrs {
        println!("— node {addr}");
        for row in sim.node_mut(addr).table_scan("path", now) {
            println!("    {row}");
        }
        for row in sim.node_mut(addr).table_scan("bestPathCost", now) {
            println!("    {row}");
        }
    }

    // Sanity: node c reaches a two ways; the best cost must be 3 (via b).
    let best = sim
        .node_mut(&addrs[2])
        .table_scan("bestPathCost", now)
        .into_iter()
        .find(|r| r.get(1) == Some(&Value::str("a")))
        .expect("c knows a best path to a");
    assert_eq!(
        best.get(2),
        Some(&Value::Int(3)),
        "best path a->b->c costs 1+2"
    );
    println!("\nquickstart OK: c's best path to a costs 3 (via b), not 9 (direct)");
}
