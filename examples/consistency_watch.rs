//! Proactive routing-consistency probes (§3.1.4) as a permanent
//! watchpoint.
//!
//! The paper's motivation for leaving monitors installed: the probe
//! continuously measures "do concurrent lookups for the same key agree?"
//! and raises `consAlarm` when the metric collapses. This run shows the
//! metric pinned at 1.0 on a healthy ring, then degrading when a node
//! dies mid-probe.
//!
//! Run with: `cargo run --example consistency_watch`

use p2ql::chord::{build_ring, ChordConfig};
use p2ql::core::SimHarness;
use p2ql::monitor::consistency::{metrics, probe_program, ProbeConfig, ALARM, CONSISTENCY};
use p2ql::types::TimeDelta;

fn main() {
    let mut sim = SimHarness::with_seed(42);
    let topo = build_ring(&mut sim, 8, &ChordConfig::default());
    println!("stabilizing 8-node ring (fingers need a few fix rounds)...");
    sim.run_for(TimeDelta::from_secs(300));

    let prober = topo.addrs[1].clone();
    let cfg = ProbeConfig {
        probe_secs: 4.0,
        tally_secs: 5,
        wait_secs: 5,
        alarm_below: 0.9,
    };
    sim.install(&prober, &probe_program(&cfg))
        .expect("cs rules");
    sim.node_mut(&prober).watch(CONSISTENCY);
    sim.node_mut(&prober).watch(ALARM);
    println!(
        "probe installed at {prober}: every {}s, alarm below {}",
        cfg.probe_secs, cfg.alarm_below
    );

    sim.run_for(TimeDelta::from_secs(40));
    println!("\nhealthy phase:");
    for (t, m) in metrics(sim.node_mut(&prober).watched(CONSISTENCY)) {
        println!("  [{t}] consistency = {m:.2}");
    }

    let victim = topo
        .live_sorted(&sim)
        .into_iter()
        .map(|(_, a)| a)
        .find(|a| *a != prober && a != topo.landmark())
        .expect("victim");
    println!("\ncrashing {victim}...");
    sim.node_mut(&prober).take_watched(CONSISTENCY);
    sim.crash(&victim);
    sim.run_for(TimeDelta::from_secs(90));

    let after = metrics(sim.node_mut(&prober).watched(CONSISTENCY));
    println!("after the crash:");
    for (t, m) in &after {
        println!("  [{t}] consistency = {m:.2}");
    }
    let alarms = sim.node_mut(&prober).watched(ALARM).len();
    let min = after.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
    println!("\nminimum metric {min:.2}; {alarms} alarms raised");
    assert!(min < 1.0, "the crash must be visible in the metric");
}
