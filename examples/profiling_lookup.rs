//! Execution profiling (§3.2): where did a lookup's latency go?
//!
//! With execution tracing enabled, every rule firing leaves `ruleExec`
//! rows and every tuple is memoized in `tupleTable`. This example issues
//! a multi-hop Chord lookup, then installs the backwards-walk rules
//! (`ep1`–`ep11`) and asks: of the end-to-end latency, how much was rule
//! execution, how much local queueing, how much network?
//!
//! Run with: `cargo run --example profiling_lookup`

use p2ql::chord::{build_ring, issue_lookup, ChordConfig};
use p2ql::core::{NodeConfig, SimHarness};
use p2ql::monitor::profiling::{profiling_program, reports, start_walk, REPORT};
use p2ql::types::{RingId, TimeDelta, Value};

fn main() {
    // Tracing on everywhere: the walk crosses nodes via tupleTable
    // correlation (§2.1.3).
    let mut sim = SimHarness::new(
        Default::default(),
        NodeConfig {
            tracing: true,
            ..Default::default()
        },
        51,
    );
    let topo = build_ring(&mut sim, 8, &ChordConfig::default());
    println!("stabilizing traced 8-node ring...");
    sim.run_for(TimeDelta::from_secs(300));
    for a in topo.addrs.clone() {
        sim.install(&a, &profiling_program()).expect("ep rules");
    }

    // A key owned half a ring away, so the lookup hops.
    let origin = topo.addrs[0].clone();
    let sorted = topo.live_sorted(&sim);
    let my_pos = sorted.iter().position(|(_, a)| *a == origin).unwrap();
    let far = &sorted[(my_pos + sorted.len() / 2) % sorted.len()];
    let key = RingId(far.0 .0.wrapping_sub(1));

    sim.node_mut(&origin).watch("lookupResults");
    sim.node_mut(&origin).watch(REPORT);
    issue_lookup(&mut sim, &origin, key, &origin, 4242);
    sim.run_for(TimeDelta::from_secs(2));

    let watched = sim.node_mut(&origin).take_watched("lookupResults");
    let (observed_at, resp) = watched
        .iter()
        .find(|(_, t)| t.get(4) == Some(&Value::id(4242)))
        .cloned()
        .expect("lookup answered");
    println!("response observed at {observed_at}: {resp}");

    // Walk the causality chain backwards from the response tuple.
    let id = sim
        .node_mut(&origin)
        .trace_id_of(&resp)
        .expect("tracer memoized the response");
    start_walk(
        &mut sim,
        &origin.clone(),
        &origin.clone(),
        1,
        id,
        observed_at,
    );
    sim.run_for(TimeDelta::from_secs(2));

    for p in reports(sim.node_mut(&origin).watched(REPORT)) {
        let total = p.rule_us + p.net_us + p.local_us;
        println!("\nlookup latency profile (walk {}):", p.walk_id);
        println!("  rule execution: {:>8} us", p.rule_us);
        println!("  network:        {:>8} us", p.net_us);
        println!("  local queueing: {:>8} us", p.local_us);
        println!("  accounted:      {:>8} us", total);
        assert!(p.net_us >= 20_000, "a multi-hop lookup crossed the wire");
    }
    println!("\nprofiling OK — network time dominates, as it should at 10ms links");
}
