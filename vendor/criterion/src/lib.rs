//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! mini-implementation provides the subset of the criterion API the
//! workspace benches use: `Criterion::bench_function`, `Bencher::iter`
//! / `iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: after a short warm-up, each benchmark runs enough
//! iterations to fill a fixed measurement window and reports the mean
//! wall-clock time per iteration (plus min-of-batches as a noise floor).
//! `--test` (as passed by `cargo bench -- --test`) switches to a smoke
//! mode that runs each routine once and reports nothing — matching real
//! criterion's behaviour under `cargo test`/`--test`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stub times whole batches and
/// sizes them identically regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to each `bench_function` closure.
pub struct Criterion {
    test_mode: bool,
    warm_up: Duration,
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            warm_up: Duration::from_millis(120),
            window: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Honour `--test` (smoke mode) from the bench binary's argv.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Override the per-benchmark measurement window.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            warm_up: self.warm_up,
            window: self.window,
            report: None,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok");
        } else if let Some(r) = b.report {
            println!(
                "{name:<44} {:>12}/iter (min {:>12}, {} iters)",
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                r.iters
            );
        }
        self
    }
}

struct Report {
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    test_mode: bool,
    warm_up: Duration,
    window: Duration,
    report: Option<Report>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate per-iteration cost.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= self.warm_up {
                break took.as_secs_f64() / n as f64;
            }
            n = n.saturating_mul(2);
        };
        // Measure in batches sized to ~1/10 of the window each.
        let batch = ((self.window.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min_batch_ns = f64::INFINITY;
        while total < self.window {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            min_batch_ns = min_batch_ns.min(took.as_nanos() as f64 / batch as f64);
            total += took;
            iters += batch;
        }
        self.report = Some(Report {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns: min_batch_ns,
            iters,
        });
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Time only the routine; setup runs outside the clock, and the
        // routine's output is dropped outside it too (matching upstream
        // criterion, which tears down batch outputs after measurement).
        let mut n: u64 = 1;
        let per_iter = loop {
            let mut took = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                took += start.elapsed();
                drop(out);
            }
            if took >= self.warm_up {
                break took.as_secs_f64() / n as f64;
            }
            n = n.saturating_mul(2);
        };
        let batch = ((self.window.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min_batch_ns = f64::INFINITY;
        while total < self.window {
            let mut took = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                took += start.elapsed();
                drop(out);
            }
            min_batch_ns = min_batch_ns.min(took.as_nanos() as f64 / batch as f64);
            total += took;
            iters += batch;
        }
        self.report = Some(Report {
            mean_ns: total.as_nanos() as f64 / iters as f64,
            min_ns: min_batch_ns,
            iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($f(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
