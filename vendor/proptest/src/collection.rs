//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::Range;

/// Strategy producing a `Vec` whose length is drawn from `size` and
/// whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty size range");
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, m..n)` — a vec of `m..n` elements.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
