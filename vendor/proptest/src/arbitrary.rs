//! `any::<T>()` and the `Arbitrary` trait for primitive types.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generation strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix plain finite values with raw-bit reinterpretations so the
        // special cases (NaN, infinities, subnormals) still show up, as
        // they do under real proptest's `any::<f64>()`.
        match rng.next_u64() % 4 {
            0 => f64::from_bits(rng.next_u64()),
            1 => (rng.next_u64() as i64 as f64) / 1024.0,
            _ => rng.next_u64() as f64,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        if rng.next_u64() & 3 == 0 {
            char::from_u32(rng.below(0x11_0000 - 0x800) as u32 + 0x800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

/// Strategy form of [`Arbitrary`], returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — generate any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
