//! Value-generation strategies: the `Strategy` trait plus the concrete
//! combinators the workspace tests use (ranges, tuples, regex-lite
//! string patterns, `prop_map`, `prop_oneof` unions).

use crate::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!`: uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = if width > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(width as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A `&str` is a regex-lite string pattern strategy.
///
/// Supported syntax (the subset this workspace uses): literal chars,
/// `.` (printable char), `[...]` classes with `a-z` ranges, and `{m}` /
/// `{m,n}` repetition on the preceding atom. A `\` escapes the next
/// character to a literal.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.generate(rng));
            }
        }
        out
    }
}

#[derive(Debug)]
enum Atom {
    Lit(char),
    Dot,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Lit(c) => *c,
            // Printable ASCII, with an occasional non-ASCII scalar so
            // `.{0,200}`-style fuzz patterns still exercise unicode.
            Atom::Dot => {
                if rng.below(8) == 0 {
                    char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('¿')
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        return char::from_u32(*a as u32 + pick as u32).unwrap();
                    }
                    pick -= span;
                }
                unreachable!("class pick out of range")
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pat.chars().peekable();
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '\\' => Atom::Lit(chars.next().unwrap_or('\\')),
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().expect("unterminated [class] in pattern");
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "inverted class range in pattern");
                            ranges.push((lo, hi));
                        }
                        c => {
                            if let Some(p) = prev.replace(c) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                Atom::Class(ranges)
            }
            '{' | '}' => panic!("dangling quantifier in pattern {pat:?}"),
            c => Atom::Lit(c),
        };
        // Optional {m} / {m,n} quantifier on the atom just parsed.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n} min"),
                    n.trim().parse().expect("bad {m,n} max"),
                ),
                None => {
                    let m: usize = spec.trim().parse().expect("bad {m} count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_respect_shape() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-z][a-zA-Z0-9]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));

            let t = "[ -~]{0,20}".generate(&mut rng);
            assert!(t.len() <= 20);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let f = (0u64..u64::MAX).generate(&mut rng);
            assert!(f < u64::MAX);
        }
    }
}
