//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! mini-implementation provides the subset of the proptest API the
//! workspace's property tests use: the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros, range / tuple / collection /
//! regex-string strategies, `any::<T>()`, and `ProptestConfig`.
//!
//! Deliberate simplifications relative to real proptest:
//!
//! * generation is **deterministic** (seeded from the test's module path
//!   and case number), so failures reproduce without persistence files;
//! * there is **no shrinking** — a failing case reports its inputs via
//!   the assertion message only;
//! * the regex-string strategy supports the subset of patterns used in
//!   this repository: literal chars, `.`, `[...]` classes with ranges,
//!   and `{m}` / `{m,n}` repetition suffixes.

pub mod arbitrary;
pub mod collection;
pub mod strategy;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// Why a test-case closure did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not failed.
    Reject,
    /// `prop_assert*!` failed: the whole test fails with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up (passing vacuously, with a note) after this many rejects.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_global_rejects: 48 * 256,
        }
    }
}

/// Deterministic split-mix RNG used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary u64.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically for one named test case.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// `use proptest::prelude::*` — everything the tests name.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

/// The main harness macro. Expands each `fn` into a `#[test]` that runs
/// `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    // Entry with a config attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@top ($cfg); $($rest)*);
    };

    // One test fn, then recurse on the remainder.
    (@top ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut successes: u32 = 0;
            let mut rejects: u32 = 0;
            let mut case: u64 = 0;
            while successes < config.cases {
                case += 1;
                if rejects > config.max_global_rejects {
                    eprintln!(
                        "proptest {}: gave up after {} rejects ({} cases passed)",
                        stringify!($name), rejects, successes
                    );
                    break;
                }
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = {
                    $crate::proptest!(@bind rng; $($params)*);
                    #[allow(unused_mut)]
                    let mut body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    body()
                };
                match result {
                    ::std::result::Result::Ok(()) => successes += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => rejects += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} case #{case} failed: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::proptest!(@top ($cfg); $($rest)*);
    };
    (@top ($cfg:expr); ) => {};

    // Parameter munching: `pattern in strategy` or `name: Type`.
    (@bind $rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    (@bind $rng:ident; $v:ident : $t:ty, $($rest:tt)*) => {
        let $v: $t = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $v:ident : $t:ty) => {
        let $v: $t = <$t as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; ) => {};

    // Entry without a config attribute (must come last).
    ($($rest:tt)*) => {
        $crate::proptest!(@top ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a), stringify!($b), l, r
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        l
                    )));
                }
            }
        }
    };
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniformly choose among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($s) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}
