//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface this workspace uses is provided,
//! backed by `std::sync::mpsc` (whose `Sender` has been `Sync` since
//! Rust 1.72, which is all the hub registry needs).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// An unbounded MPSC channel (std's `channel` is already unbounded).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
