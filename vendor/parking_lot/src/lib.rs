//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly, recovering
//! the inner value if a previous holder panicked.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
