#!/usr/bin/env bash
# Re-record the golden EXPLAIN snapshots in crates/planner/tests/snapshots/.
#
# Run after an intentional planner/optimizer change, then REVIEW the git
# diff of the snapshots — every changed line is a plan change shipping to
# users, not test noise.
set -euo pipefail
cd "$(dirname "$0")/.."

SNAPSHOT_REGEN=1 cargo test -q -p p2-planner --test explain_snapshots
SNAPSHOT_REGEN=1 cargo test -q --test check_diagnostics
echo "snapshots updated; review with:"
echo "  git diff crates/planner/tests/snapshots/ tests/bad_programs/snapshots/"
