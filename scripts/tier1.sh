#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Checks formatting and lints, builds the workspace in release mode,
# runs the full test suite (unit + integration + proptests), then
# smoke-runs the Criterion micro-benches (compile + one iteration each,
# no timing windows).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
# Golden EXPLAIN snapshots (already part of `cargo test`, but run them
# by name so a drift failure is unmistakable in CI logs; re-record
# intentional plan changes with scripts/update_snapshots.sh).
cargo test -q -p p2-planner --test explain_snapshots
cargo bench --no-run
cargo bench -p p2-bench --bench engine -- --test
cargo bench -p p2-bench --bench store_probe -- --test
cargo bench -p p2-bench --bench node_pump -- --test
cargo bench -p p2-bench --bench strand_eval -- --test

echo "tier1: OK"
