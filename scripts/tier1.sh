#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Checks formatting and lints, builds the workspace in release mode,
# runs the full test suite (unit + integration + proptests), then
# smoke-runs the Criterion micro-benches (compile + one iteration each,
# no timing windows).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
# Golden EXPLAIN snapshots (already part of `cargo test`, but run them
# by name so a drift failure is unmistakable in CI logs; re-record
# intentional plan changes with scripts/update_snapshots.sh).
cargo test -q -p p2-planner --test explain_snapshots
# Static analysis gate: every shipped example must check clean through
# the full `p2ql check` pipeline (the stacked-monitor corpus runs as
# tests/check_corpus.rs inside `cargo test` above), and a known-broken
# program must fail with a non-zero exit.
cargo run --release --bin p2ql -- check programs/*.olg
if cargo run --release --bin p2ql -- check tests/bad_programs/typo_relation.olg \
    >/dev/null 2>&1; then
  echo "tier1: p2ql check passed a known-broken program" >&2
  exit 1
fi
cargo bench --no-run
cargo bench -p p2-bench --bench engine -- --test
cargo bench -p p2-bench --bench store_probe -- --test
cargo bench -p p2-bench --bench node_pump -- --test
cargo bench -p p2-bench --bench strand_eval -- --test

echo "tier1: OK"
