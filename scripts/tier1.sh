#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Checks formatting and lints, builds the workspace in release mode,
# runs the full test suite (unit + integration + proptests), then
# smoke-runs the Criterion micro-benches (compile + one iteration each,
# no timing windows).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo bench -p p2-bench --bench engine -- --test
cargo bench -p p2-bench --bench store_probe -- --test
cargo bench -p p2-bench --bench node_pump -- --test

echo "tier1: OK"
