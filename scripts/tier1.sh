#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Checks formatting and lints, builds the workspace in release mode,
# runs the full test suite (unit + integration + proptests), then
# smoke-runs the Criterion micro-benches (compile + one iteration each,
# no timing windows).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
# Golden EXPLAIN snapshots (already part of `cargo test`, but run them
# by name so a drift failure is unmistakable in CI logs; re-record
# intentional plan changes with scripts/update_snapshots.sh).
cargo test -q -p p2-planner --test explain_snapshots
# Static analysis gate: every shipped example must check clean through
# the full `p2ql check` pipeline *including the deep flow passes*
# (cascade termination, amplification, stratification — DESIGN.md
# §2.13; the stacked-monitor corpus runs as tests/check_corpus.rs
# inside `cargo test` above), and known-broken programs must fail with
# a non-zero exit.
cargo run --release --bin p2ql -- check --deep programs/*.olg
# The built-in Chord + §3 monitor stack must be deep-clean too.
cargo run --release --bin p2ql -- check --deep --chord
if cargo run --release --bin p2ql -- check tests/bad_programs/typo_relation.olg \
    >/dev/null 2>&1; then
  echo "tier1: p2ql check passed a known-broken program" >&2
  exit 1
fi
# A known event storm must fail the deep pass (P2W601).
if cargo run --release --bin p2ql -- check --deep tests/bad_programs/storm_ping_pong.olg \
    >/dev/null 2>&1; then
  echo "tier1: p2ql check --deep passed a known event storm" >&2
  exit 1
fi
# --json smoke: the machine-readable report must be well-formed JSON.
cargo run --release --bin p2ql -- check --deep --json --chord \
    | python3 -m json.tool > /dev/null
# Parallel-engine determinism gates. The golden Chord trace must be
# byte-identical under sharding — NodeConfig defaults to archiving off,
# so this also pins that the archive tier changes nothing when disabled
# (already inside `cargo test`, but run by name so a divergence is
# unmistakable in CI logs).
cargo test -q --test parallel_equivalence golden_chord_trace_is_identical_when_sharded
# Forensic-replay determinism gate (DESIGN.md §2.11): the full
# incident-reconstruction report — archive scans, past() answers,
# retrospective detectors — must be byte-identical at 1 and 4 shards.
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 \
    > target/replay.1shard.txt
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 4 \
    > target/replay.4shard.txt
if ! cmp -s target/replay.1shard.txt target/replay.4shard.txt; then
  echo "tier1: forensic replay diverged between 1 and 4 shards" >&2
  diff target/replay.1shard.txt target/replay.4shard.txt >&2 || true
  exit 1
fi
# Distributed-forensics gate (DESIGN.md §2.12): the same report must
# come out byte-identical when every verdict is answered from a
# collector node's shipped history (`--collect`, subscribe mode)
# instead of walking each origin's own archive — at 1 and 4 shards.
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 --collect \
    > target/replay.collect.1shard.txt
if ! cmp -s target/replay.1shard.txt target/replay.collect.1shard.txt; then
  echo "tier1: collector-node replay diverged from origin-node replay" >&2
  diff target/replay.1shard.txt target/replay.collect.1shard.txt >&2 || true
  exit 1
fi
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 4 --collect \
    > target/replay.collect.4shard.txt
if ! cmp -s target/replay.4shard.txt target/replay.collect.4shard.txt; then
  echo "tier1: sharded collector-node replay diverged" >&2
  diff target/replay.4shard.txt target/replay.collect.4shard.txt >&2 || true
  exit 1
fi
cargo bench --no-run
cargo bench -p p2-bench --bench engine -- --test
cargo bench -p p2-bench --bench store_probe -- --test
cargo bench -p p2-bench --bench node_pump -- --test
cargo bench -p p2-bench --bench strand_eval -- --test
cargo bench -p p2-bench --bench population_scale -- --test
cargo bench -p p2-bench --bench archive_scan -- --test
cargo bench -p p2-bench --bench segment_ship -- --test
# Population-scaling emission: the CI-sized sweep exercises the full
# `figures scale --json` path (its internal assert re-checks that every
# shard count sends exactly the sequential engine's envelope count).
# It writes to target/ so it never clobbers the committed artifact;
# regenerate that one with the full 21/256/1024-node sweep:
#   cargo run --release -p p2-bench --bin figures -- scale --json BENCH_scale.json
cargo run --release -p p2-bench --bin figures -- scale --quick --json target/BENCH_scale.quick.json

echo "tier1: OK"
