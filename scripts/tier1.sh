#!/usr/bin/env bash
# Tier-1 verification: everything a change must keep green.
#
#   scripts/tier1.sh
#
# Checks formatting and lints, builds the workspace in release mode,
# runs the full test suite (unit + integration + proptests), then
# smoke-runs the Criterion micro-benches (compile + one iteration each,
# no timing windows).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
cargo test -q
# Golden EXPLAIN snapshots (already part of `cargo test`, but run them
# by name so a drift failure is unmistakable in CI logs; re-record
# intentional plan changes with scripts/update_snapshots.sh).
cargo test -q -p p2-planner --test explain_snapshots
# Static analysis gate: every shipped example must check clean through
# the full `p2ql check` pipeline *including the deep flow passes*
# (cascade termination, amplification, stratification — DESIGN.md
# §2.13; the stacked-monitor corpus runs as tests/check_corpus.rs
# inside `cargo test` above), and known-broken programs must fail with
# a non-zero exit.
cargo run --release --bin p2ql -- check --deep programs/*.olg
# The built-in Chord + §3 monitor stack must be deep-clean too.
cargo run --release --bin p2ql -- check --deep --chord
if cargo run --release --bin p2ql -- check tests/bad_programs/typo_relation.olg \
    >/dev/null 2>&1; then
  echo "tier1: p2ql check passed a known-broken program" >&2
  exit 1
fi
# A known event storm must fail the deep pass (P2W601).
if cargo run --release --bin p2ql -- check --deep tests/bad_programs/storm_ping_pong.olg \
    >/dev/null 2>&1; then
  echo "tier1: p2ql check --deep passed a known event storm" >&2
  exit 1
fi
# --json smoke: the machine-readable report must be well-formed JSON.
cargo run --release --bin p2ql -- check --deep --json --chord \
    | python3 -m json.tool > /dev/null
# Parallel-engine determinism gates. The golden Chord trace must be
# byte-identical under sharding — NodeConfig defaults to archiving off,
# so this also pins that the archive tier changes nothing when disabled
# (already inside `cargo test`, but run by name so a divergence is
# unmistakable in CI logs).
cargo test -q --test parallel_equivalence golden_chord_trace_is_identical_when_sharded
# Forensic-replay determinism gate (DESIGN.md §2.11): the full
# incident-reconstruction report — archive scans, past() answers,
# retrospective detectors — must be byte-identical at 1 and 4 shards.
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 \
    > target/replay.1shard.txt
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 4 \
    > target/replay.4shard.txt
if ! cmp -s target/replay.1shard.txt target/replay.4shard.txt; then
  echo "tier1: forensic replay diverged between 1 and 4 shards" >&2
  diff target/replay.1shard.txt target/replay.4shard.txt >&2 || true
  exit 1
fi
# Distributed-forensics gate (DESIGN.md §2.12): the same report must
# come out byte-identical when every verdict is answered from a
# collector node's shipped history (`--collect`, subscribe mode)
# instead of walking each origin's own archive — at 1 and 4 shards.
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 --collect \
    > target/replay.collect.1shard.txt
if ! cmp -s target/replay.1shard.txt target/replay.collect.1shard.txt; then
  echo "tier1: collector-node replay diverged from origin-node replay" >&2
  diff target/replay.1shard.txt target/replay.collect.1shard.txt >&2 || true
  exit 1
fi
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 4 --collect \
    > target/replay.collect.4shard.txt
if ! cmp -s target/replay.4shard.txt target/replay.collect.4shard.txt; then
  echo "tier1: sharded collector-node replay diverged" >&2
  diff target/replay.4shard.txt target/replay.collect.4shard.txt >&2 || true
  exit 1
fi
# Durability gates (DESIGN.md §2.14). Crash-restart recovery must be
# deterministic: the replay report with a mid-run crash-restart of one
# ring node (soft state lost, archive recovered from the durable log)
# must be byte-identical at 1 and 4 shards.
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 --restart 2 \
    > target/replay.restart.1shard.txt
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 4 --restart 2 \
    > target/replay.restart.4shard.txt
if ! cmp -s target/replay.restart.1shard.txt target/replay.restart.4shard.txt; then
  echo "tier1: crash-restart replay diverged between 1 and 4 shards" >&2
  diff target/replay.restart.1shard.txt target/replay.restart.4shard.txt >&2 || true
  exit 1
fi
# A collector subscribed to the restarted deployment must reconstruct
# the same report from shipped history (the reborn origin's generation
# bump re-baselines it).
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 --restart 2 --collect \
    > target/replay.restart.collect.txt
if ! cmp -s target/replay.restart.1shard.txt target/replay.restart.collect.txt; then
  echo "tier1: collector replay over a restarted deployment diverged" >&2
  diff target/replay.restart.1shard.txt target/replay.restart.collect.txt >&2 || true
  exit 1
fi
# The file backend must produce the very same report as the in-memory
# one, and a corrupted data dir must recover (quarantine + truncate)
# with a clean exit — recovery never panics.
rm -rf target/tier1-durable
cargo run --release --bin p2ql -- replay --nodes 5 --seed 1 --shards 1 --restart 2 \
    --data-dir target/tier1-durable > target/replay.restart.file.txt
if ! cmp -s target/replay.restart.1shard.txt target/replay.restart.file.txt; then
  echo "tier1: file-backed crash-restart replay diverged from in-memory" >&2
  diff target/replay.restart.1shard.txt target/replay.restart.file.txt >&2 || true
  exit 1
fi
printf 'torn tail and then some garbage' >> target/tier1-durable/n2/rel-0.seglog
cargo run --release --bin p2ql -- recover --dir target/tier1-durable/n2 \
    > target/recover.audit.txt
if grep -q "truncated 0 tail bytes" target/recover.audit.txt; then
  echo "tier1: recover missed the injected log damage" >&2
  exit 1
fi
# A second audit must find the log rewritten clean.
cargo run --release --bin p2ql -- recover --dir target/tier1-durable/n2 \
    > target/recover.audit2.txt
grep -q "truncated 0 tail bytes, quarantined 0 frames" target/recover.audit2.txt
cargo bench --no-run
cargo bench -p p2-bench --bench engine -- --test
cargo bench -p p2-bench --bench store_probe -- --test
cargo bench -p p2-bench --bench node_pump -- --test
cargo bench -p p2-bench --bench strand_eval -- --test
cargo bench -p p2-bench --bench population_scale -- --test
cargo bench -p p2-bench --bench archive_scan -- --test
cargo bench -p p2-bench --bench segment_ship -- --test
cargo bench -p p2-bench --bench durable_recover -- --test
# Population-scaling emission: the CI-sized sweep exercises the full
# `figures scale --json` path (its internal assert re-checks that every
# shard count sends exactly the sequential engine's envelope count).
# It writes to target/ so it never clobbers the committed artifact;
# regenerate that one with the full 21/256/1024-node sweep:
#   cargo run --release -p p2-bench --bin figures -- scale --json BENCH_scale.json
cargo run --release -p p2-bench --bin figures -- scale --quick --json target/BENCH_scale.quick.json

echo "tier1: OK"
