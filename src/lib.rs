//! # p2ql — declarative distributed monitoring and forensics
//!
//! Umbrella crate for the Rust reproduction of *"Using Queries for
//! Distributed Monitoring and Forensics"* (Singh, Roscoe, Maniatis,
//! Druschel — EuroSys 2006). It re-exports the subsystem crates under
//! stable module names so applications can depend on one crate:
//!
//! * [`types`] — values, tuples, addresses, ring-ID algebra;
//! * [`overlog`] — the OverLog language (lexer, parser, AST, validator);
//! * [`store`] — soft-state tables with lifetimes, sizes and primary keys;
//! * [`dataflow`] — the Click-like element graph with pipelined strands;
//! * [`trace`] — the execution tracer (`ruleExec` / `tupleTable`, §2.1);
//! * [`planner`] — OverLog → dataflow compilation with tap insertion;
//! * [`analysis`] — static analysis (`p2ql check`): type inference,
//!   location safety, liveness lints over program stacks;
//! * [`net`] — simulated and threaded network transports;
//! * [`core`] — the node runtime, introspection, and simulation harness;
//! * [`chord`] — the P2-Chord overlay (the paper's running application);
//! * [`monitor`] — every monitoring application from Section 3.
//!
//! See `examples/quickstart.rs` for a five-minute tour, or run an
//! OverLog file directly with the `p2ql` binary
//! (`cargo run --bin p2ql -- run programs/paths.olg --nodes 3`).
//!
//! ```
//! use p2ql::core::SimHarness;
//! use p2ql::types::{TimeDelta, Tuple, Value};
//!
//! let mut sim = SimHarness::with_seed(7);
//! let a = sim.add_node("a");
//! sim.install(&a, r#"
//!     materialize(seen, infinity, infinity, keys(1, 2)).
//!     r1 seen@N(X) :- ping@N(X).
//! "#).unwrap();
//! sim.inject(&a, Tuple::new("ping", [Value::addr("a"), Value::Int(7)]));
//! sim.run_for(TimeDelta::from_secs(1));
//! let now = sim.now();
//! assert_eq!(sim.node_mut(&a).table_scan("seen", now).len(), 1);
//! ```

pub use p2_analysis as analysis;
pub use p2_chord as chord;
pub use p2_core as core;
pub use p2_dataflow as dataflow;
pub use p2_monitor as monitor;
pub use p2_net as net;
pub use p2_overlog as overlog;
pub use p2_planner as planner;
pub use p2_store as store;
pub use p2_trace as trace;
pub use p2_types as types;
