//! `p2ql` — command-line front end for OverLog programs.
//!
//! ```text
//! p2ql check  prog.olg ...             # full static analysis (see below)
//! p2ql fmt    prog.olg                 # canonical pretty-printed source
//! p2ql plan   prog.olg [--opt off]     # EXPLAIN the compiled rule strands
//! p2ql run    prog.olg [options]       # execute on a simulated population
//! p2ql trace  prog.olg [options]       # run + dump ruleExec/tupleTable
//! p2ql replay [options]                # forensic time-travel demo (below)
//! p2ql recover --dir PATH              # offline durable-log recovery audit
//!
//! check runs the whole `p2-analysis` pipeline — validation, type
//! inference, location safety, liveness lints, and a planner dry run —
//! and renders every finding with a source snippet. Multiple files are
//! checked independently; with `--stack` they are analyzed as one
//! stack, in order (base application first, monitors after), which is
//! how they would be installed. `--extern EVENT` (repeatable) names an
//! event relation injected from outside — an operator console — so
//! consuming it is not flagged. Exit status is non-zero when any file
//! has errors or warnings; notes are informational.
//!
//! check options beyond `--stack` / `--extern`:
//!   --deep     run the flow analyzer too (DESIGN.md §2.13): cascade
//!              termination (P2W601), amplification bounds (P2W602),
//!              stratification (P2E603); prints per-root worst-case
//!              cascade depth and amplification after the verdict
//!   --json     machine-readable report on stdout: one array with an
//!              object per checked stack ({stack, passes, diagnostics,
//!              flow}); unbounded flow bounds render as null
//!   --chord    prepend the built-in Chord program and the §3 monitor
//!              suite to the stack (implies --stack; no files needed) —
//!              how tier-1 gates the shipped corpus
//!
//! run/trace options:
//!   --nodes N        population size (default 1; addresses n0..n[N-1])
//!   --for SECS       virtual seconds to run (default 30)
//!   --watch REL      print tuples of this relation as they appear
//!                    (repeatable)
//!   --dump TABLE     print the table's rows at the end (repeatable)
//!   --seed S         simulation seed (default 1)
//!   --latency MS     link latency in milliseconds (default 10)
//! ```
//!
//! The program is installed on **every** node; per-node facts can use
//! explicit addresses (`node@"n0"(0x11).`). This is the operator-console
//! stand-in: the paper's §1.3 usage of writing a monitoring query and
//! pointing it at a running system, here bootstrapped from files.
//!
//! `replay` is the forensic (§3 + DESIGN.md §2.11) demonstration: it
//! runs a Chord ring in forensic mode (tracing + archive tier on),
//! corrupts one successor pointer mid-run, lets stabilization heal it
//! and the live soft state expire, and then answers "was the ring
//! well-formed at instant T?" **retrospectively** — from archived
//! segments alone. The report is canonical text: the same seed prints
//! byte-identical output at any shard count (the tier-1 determinism
//! gate diffs 1 shard against 4).
//!
//! replay options:
//!   --nodes N        ring size (default 5, minimum 3)
//!   --seed S         simulation seed (default 1)
//!   --shards K       run under the parallel harness with K shards
//!                    (default 1 = the sequential simulator)
//!   --warm SECS      stabilization warm-up (default 180)
//!   --post SECS      run-on after the corruption (default 120; must
//!                    exceed the routing-row lifetime so the probed
//!                    history is truly expired)
//!   --collect        add a collector node the ring streams sealed
//!                    segments to (DESIGN.md §2.12 subscribe mode) and
//!                    answer every verdict from the collector's
//!                    deployment-wide history instead of walking each
//!                    origin's archive. The report must be
//!                    byte-identical either way — tier-1 diffs the two.
//!   --restart I      after the post run, crash-restart ring node I
//!                    (mod ring size): all soft state is lost, the
//!                    archive recovers from the durable segment log
//!                    (DESIGN.md §2.14), and every verdict over
//!                    pre-crash instants is answered from recovered
//!                    segments. Implies durability (in-memory backend
//!                    unless --data-dir is also given). The report is
//!                    still shard-count-invariant — tier-1 diffs 1
//!                    shard against 4 with a restart injected.
//!   --data-dir PATH  put the durable logs on disk under PATH (one
//!                    subdirectory per node); implies durability.
//!                    `p2ql recover --dir PATH/<node>` audits what a
//!                    reboot would recover from such a directory.

use p2ql::core::{NodeConfig, SimHarness};
use p2ql::net::SimConfig;
use p2ql::types::{TimeDelta, Value};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: p2ql <check|fmt|plan|run|trace|replay|recover> [file.olg] [options]");
        return ExitCode::from(2);
    };
    if cmd == "check" {
        return check(&args[1..]);
    }
    if cmd == "replay" {
        return replay(&args[1..]);
    }
    if cmd == "recover" {
        return recover(&args[1..]);
    }
    let Some(path) = args.get(1) else {
        eprintln!("missing program file");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd.as_str() {
        "fmt" => fmt(&src),
        "plan" => plan(&src, &args[2..]),
        "run" => run(&src, &args[2..], false),
        "trace" => run(&src, &args[2..], true),
        other => {
            eprintln!("unknown command '{other}'");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    use p2ql::analysis::{check_sources_with, AnalysisCtx, CheckOpts, FlowReport};
    use p2ql::overlog::{Severity, SourceUnit};

    let mut stack = false;
    let mut deep = false;
    let mut json = false;
    let mut chord = false;
    let mut ctx = AnalysisCtx::default();
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stack" => stack = true,
            "--deep" => deep = true,
            "--json" => json = true,
            "--chord" => {
                chord = true;
                stack = true; // the builtins only make sense as one stack
            }
            "--extern" => match it.next() {
                Some(name) => {
                    ctx.external_events.insert(name.clone());
                }
                None => {
                    eprintln!("--extern needs an event relation name");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown check option '{other}'");
                return ExitCode::from(2);
            }
            p => paths.push(p),
        }
    }
    if paths.is_empty() && !chord {
        eprintln!(
            "usage: p2ql check [--stack] [--deep] [--json] [--chord] \
             [--extern EVENT] <file.olg> [more.olg ...]"
        );
        return ExitCode::from(2);
    }

    // `--chord` prepends the built-in Chord overlay plus the §3 monitor
    // suite, so the shipped corpus can be gated without source files on
    // disk (tier-1 runs `p2ql check --deep --chord`).
    let mut names: Vec<String> = Vec::new();
    let mut sources: Vec<String> = Vec::new();
    if chord {
        use p2ql::monitor::{ordering, oscillation, ring, watchpoints};
        let builtins = [
            (
                "<builtin:chord>",
                p2ql::chord::chord_program(&p2ql::chord::ChordConfig::default()),
            ),
            ("<builtin:ring-active>", ring::active_probe_program(10)),
            ("<builtin:ring-passive>", ring::passive_check_program()),
            ("<builtin:ordering>", ordering::opportunistic_program()),
            ("<builtin:traversal>", ordering::traversal_program()),
            ("<builtin:oscillation>", oscillation::full_program()),
            ("<builtin:watchpoints>", watchpoints::suite_program(10)),
        ];
        for (n, s) in builtins {
            names.push(n.to_string());
            sources.push(s);
        }
        // The token traversal starts from the operator console
        // (`ordering::start_traversal` injects it), not from a rule.
        ctx.external_events.insert("orderingEvent".to_string());
    }
    for p in &paths {
        match std::fs::read_to_string(p) {
            Ok(s) => {
                names.push((*p).to_string());
                sources.push(s);
            }
            Err(e) => {
                eprintln!("cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Each file alone, or all files as one install stack.
    let groups: Vec<Vec<usize>> = if stack {
        vec![(0..names.len()).collect()]
    } else {
        (0..names.len()).map(|i| vec![i]).collect()
    };

    let opts = CheckOpts { deep };
    let mut failed = false;
    let mut json_groups: Vec<String> = Vec::new();
    for group in groups {
        let units: Vec<SourceUnit<'_>> = group
            .iter()
            .map(|&i| SourceUnit {
                name: &names[i],
                src: &sources[i],
            })
            .collect();
        let report = check_sources_with(&units, &ctx, &opts);
        let label = group
            .iter()
            .map(|&i| names[i].as_str())
            .collect::<Vec<_>>()
            .join(" + ");
        if !report.passes() {
            failed = true;
        }
        if json {
            json_groups.push(check_group_json(&label, &units, &report));
            continue;
        }
        if report.diags.items.is_empty() {
            let rules: usize = report.programs.iter().map(|p| p.rules().count()).sum();
            let tables: usize = report
                .programs
                .iter()
                .map(|p| p.materializations().count())
                .sum();
            println!("{label}: ok ({rules} rules, {tables} tables)");
        } else {
            eprint!("{}", report.diags.render(&units));
            let (e, w, n) = (
                report.diags.count(Severity::Error),
                report.diags.count(Severity::Warning),
                report.diags.count(Severity::Note),
            );
            eprintln!("{label}: {e} errors, {w} warnings, {n} notes");
        }
        if let Some(flow) = &report.flow {
            print_flow_summary(flow);
        }
    }
    if json {
        println!("[{}]", json_groups.join(","));
    }
    return if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    };

    /// Human-readable `--deep` epilogue: worst-case cascade bounds per
    /// external root, and how many strata the stack needs.
    fn print_flow_summary(flow: &FlowReport) {
        let max_stratum = flow.strata.values().copied().max().unwrap_or(0);
        println!("  flow: {} strata, roots: {}", max_stratum + 1, {
            if flow.roots.is_empty() {
                "none".to_string()
            } else {
                flow.roots.join(", ")
            }
        });
        for root in &flow.roots {
            let depth = flow
                .depth
                .get(root)
                .map_or("0".to_string(), |b| b.to_string());
            let amp = flow
                .amplification
                .get(root)
                .map_or("0".to_string(), |b| b.to_string());
            println!("    {root}: cascade depth {depth}, amplification {amp}");
        }
    }
}

/// One `--json` result object for a check group. Hand-rolled (the tree
/// is small and flat; no serializer dependency wanted).
fn check_group_json(
    label: &str,
    units: &[p2ql::overlog::SourceUnit<'_>],
    report: &p2ql::analysis::CheckReport,
) -> String {
    use p2ql::analysis::Bound;

    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn bound(b: &Bound) -> String {
        match b {
            Bound::Finite(n) => n.to_string(),
            Bound::Unbounded => "null".to_string(),
        }
    }

    let mut diags = Vec::new();
    for d in &report.diags.items {
        let file = units.get(d.unit).map(|u| u.name).unwrap_or("<unknown>");
        let (line, col) = d
            .span
            .map_or(("null".to_string(), "null".to_string()), |s| {
                (s.line.to_string(), s.col.to_string())
            });
        let context = d
            .context
            .as_deref()
            .map_or("null".to_string(), |c| format!("\"{}\"", esc(c)));
        let help = d
            .help
            .as_deref()
            .map_or("null".to_string(), |h| format!("\"{}\"", esc(h)));
        diags.push(format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\
             \"line\":{line},\"col\":{col},\"message\":\"{}\",\
             \"context\":{context},\"help\":{help}}}",
            d.code,
            d.severity,
            esc(file),
            esc(&d.message),
        ));
    }

    let flow = report.flow.as_ref().map_or("null".to_string(), |f| {
        let roots: Vec<String> = f.roots.iter().map(|r| format!("\"{}\"", esc(r))).collect();
        let depth: Vec<String> = f
            .depth
            .iter()
            .map(|(r, b)| format!("\"{}\":{}", esc(r), bound(b)))
            .collect();
        let amp: Vec<String> = f
            .amplification
            .iter()
            .map(|(r, b)| format!("\"{}\":{}", esc(r), bound(b)))
            .collect();
        let strata: Vec<String> = f
            .strata
            .iter()
            .map(|(r, s)| format!("\"{}\":{s}", esc(r)))
            .collect();
        format!(
            "{{\"roots\":[{}],\"depth\":{{{}}},\"amplification\":{{{}}},\
             \"strata\":{{{}}}}}",
            roots.join(","),
            depth.join(","),
            amp.join(","),
            strata.join(",")
        )
    });

    format!(
        "{{\"stack\":\"{}\",\"passes\":{},\"diagnostics\":[{}],\"flow\":{flow}}}",
        esc(label),
        report.passes(),
        diags.join(",")
    )
}

fn fmt(src: &str) -> ExitCode {
    match p2ql::overlog::parse_program(src) {
        Ok(p) => {
            print!("{}", p2ql::overlog::pretty::program_to_string(&p));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn plan(src: &str, args: &[String]) -> ExitCode {
    let mut opts = p2ql::planner::PlanOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--opt" => match it.next().map(String::as_str) {
                Some("off") => opts = p2ql::planner::PlanOpts::off(),
                Some("full") => opts = p2ql::planner::PlanOpts::default(),
                other => {
                    eprintln!("--opt needs 'off' or 'full', got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown plan option '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let program = match p2ql::overlog::compile(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match p2ql::planner::compile_program_with(&program, &Default::default(), &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("plan error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", p2ql::planner::explain(&compiled));
    ExitCode::SUCCESS
}

struct RunOpts {
    nodes: usize,
    secs: u64,
    seed: u64,
    latency_ms: u64,
    watches: Vec<String>,
    dumps: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        nodes: 1,
        secs: 30,
        seed: 1,
        latency_ms: 10,
        watches: Vec::new(),
        dumps: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--nodes" => {
                o.nodes = val("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--for" => o.secs = val("--for")?.parse().map_err(|e| format!("--for: {e}"))?,
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--latency" => {
                o.latency_ms = val("--latency")?
                    .parse()
                    .map_err(|e| format!("--latency: {e}"))?
            }
            "--watch" => o.watches.push(val("--watch")?),
            "--dump" => o.dumps.push(val("--dump")?),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if o.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    Ok(o)
}

fn run(src: &str, args: &[String], tracing: bool) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut sim = SimHarness::new(
        SimConfig {
            latency: TimeDelta::from_millis(opts.latency_ms),
            ..Default::default()
        },
        NodeConfig {
            tracing,
            ..Default::default()
        },
        opts.seed,
    );
    for i in 0..opts.nodes {
        sim.add_node(&format!("n{i}"));
    }
    let addrs = sim.addrs().to_vec();
    for a in &addrs {
        if let Err(e) = sim.install(a, src) {
            eprintln!("install on {a} failed: {e}");
            return ExitCode::FAILURE;
        }
        for w in &opts.watches {
            sim.node_mut(a).watch(w);
        }
    }
    sim.run_for(TimeDelta::from_secs(opts.secs));

    for a in &addrs {
        for w in opts.watches.clone() {
            for (t, tup) in sim.node_mut(a).take_watched(&w) {
                println!("[{t}] {a}: {tup}");
            }
        }
    }
    let now = sim.now();
    for a in &addrs {
        for d in &opts.dumps {
            for row in sim.node_mut(a).table_scan(d, now) {
                println!("{a}: {row}");
            }
        }
    }
    if tracing {
        for a in &addrs {
            let execs = sim.node_mut(a).table_scan("ruleExec", now);
            println!("-- {a}: {} ruleExec rows", execs.len());
            for row in execs.iter().take(50) {
                // Resolve memoized IDs back to content for readability.
                let fmt_id = |v: Option<&Value>| match v {
                    Some(Value::Id(i)) => sim
                        .node(a)
                        .trace_content_of(p2ql::types::TupleId(i.0))
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| format!("{i}")),
                    Some(other) => other.to_string(),
                    None => "?".into(),
                };
                println!(
                    "   {} : {} -> {}  [{}]",
                    row.get(1).map(|v| v.to_string()).unwrap_or_default(),
                    fmt_id(row.get(2)),
                    fmt_id(row.get(3)),
                    if row.get(6) == Some(&Value::Bool(true)) {
                        "event"
                    } else {
                        "precond"
                    },
                );
            }
        }
    }
    ExitCode::SUCCESS
}

struct ReplayOpts {
    nodes: usize,
    seed: u64,
    shards: usize,
    warm_secs: u64,
    post_secs: u64,
    collect: bool,
    /// Crash-restart the ring node with this index after the post run;
    /// its soft state is lost and its archive recovers from the durable
    /// log (DESIGN.md §2.14). Implies durability (in-memory backend
    /// unless `--data-dir` picks the file backend).
    restart: Option<usize>,
    /// Root directory for file-backed durable logs (one subdirectory
    /// per node). Implies durability.
    data_dir: Option<String>,
}

fn parse_replay_opts(args: &[String]) -> Result<ReplayOpts, String> {
    let mut o = ReplayOpts {
        nodes: 5,
        seed: 1,
        shards: 1,
        warm_secs: 180,
        post_secs: 120,
        collect: false,
        restart: None,
        data_dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--nodes" => {
                o.nodes = val("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--shards" => {
                o.shards = val("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--warm" => o.warm_secs = val("--warm")?.parse().map_err(|e| format!("--warm: {e}"))?,
            "--post" => o.post_secs = val("--post")?.parse().map_err(|e| format!("--post: {e}"))?,
            "--collect" => o.collect = true,
            "--restart" => {
                o.restart = Some(
                    val("--restart")?
                        .parse()
                        .map_err(|e| format!("--restart: {e}"))?,
                )
            }
            "--data-dir" => o.data_dir = Some(val("--data-dir")?),
            other => return Err(format!("unknown replay option '{other}'")),
        }
    }
    if o.nodes < 3 {
        return Err("--nodes must be at least 3 (the scenario mis-points one link)".into());
    }
    if o.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(o)
}

/// The deterministic forensic scenario, generic over the engine so one
/// code path serves both harnesses (their bit-equivalence is what makes
/// the report shard-count-invariant).
fn replay_scenario<H: p2ql::core::Population>(sim: &mut H, o: &ReplayOpts) -> String {
    use p2ql::chord::{build_ring, ChordConfig};
    use p2ql::monitor::retrospect;
    use p2ql::types::{Time, Tuple};
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "replay: nodes={} seed={} warm={}s post={}s",
        o.nodes, o.seed, o.warm_secs, o.post_secs
    );

    let ring = build_ring(sim, o.nodes, &ChordConfig::default());
    // Collect mode: one extra node runs no programs at all — the ring
    // streams its sealed segments there at every GC sweep, and every
    // retrospective verdict below reads that node's deployment-wide
    // history instead of walking each origin's own archive.
    let collector = o.collect.then(|| {
        let c = sim.add_node("collector");
        for addr in ring.addrs.clone() {
            sim.node_mut(&addr).ship_subscribe(c.clone());
        }
        c
    });
    sim.run_for(TimeDelta::from_secs(o.warm_secs));
    let t_healthy = sim.now();
    sim.run_for(TimeDelta::from_secs(1));

    // Mis-point the lowest-ID node's successor two positions ahead —
    // the §3.1 malformation, injected at a known instant.
    let sorted = ring.live_sorted(sim);
    let victim = sorted[0].1.clone();
    let wrong = sorted[2].1.clone();
    sim.inject(
        &victim,
        Tuple::new(
            "bestSucc",
            [
                Value::Addr(victim.clone()),
                Value::Id(ring.id_of(&wrong)),
                Value::Addr(wrong.clone()),
            ],
        ),
    );
    let t_corrupt = sim.now();
    let _ = writeln!(out, "corruption at {t_corrupt}: {victim} -> {wrong}");

    // Run on: stabilization heals the ring, and the row versions valid
    // at both probe instants expire out of the live tier. Everything
    // below reads archived history.
    sim.run_for(TimeDelta::from_secs(o.post_secs));

    // Crash-restart: the chosen node loses every piece of soft state
    // and recovers its sealed archive from the durable log, then the
    // ring re-stabilizes. The verdicts below range over instants before
    // the crash — they are answered from recovered segments.
    if let Some(i) = o.restart {
        let addr = ring.addrs[i % ring.addrs.len()].clone();
        let _ = writeln!(
            out,
            "crash-restart {addr}: soft state lost, archive recovered from the durable log"
        );
        if sim.restart(&addr).is_err() {
            let _ = writeln!(out, "  restart failed to reinstall programs");
        }
        // Subscriptions are soft state too: re-enroll the reborn origin.
        // Its bumped announce generation makes the collector re-baseline
        // rather than ignore announcements it thinks it has seen.
        if let Some(c) = &collector {
            sim.node_mut(&addr).ship_subscribe(c.clone());
        }
        sim.run_for(TimeDelta::from_secs(30));
    }
    let t_end = sim.now();

    let verdict = |sim: &mut H, t: Time, out: &mut String| {
        let (wf, viols) = match &collector {
            Some(c) => (
                retrospect::ring_was_well_formed_at_collected(sim, c, &ring, t),
                retrospect::ordering_violations_at_collected(sim, c, &ring, t),
            ),
            None => (
                retrospect::ring_was_well_formed_at(sim, &ring, t),
                retrospect::ordering_violations_at(sim, &ring, t),
            ),
        };
        let _ = writeln!(
            out,
            "[{t}] ring: {}, {} ordering violation(s)",
            if wf { "well-formed" } else { "MALFORMED" },
            viols.len()
        );
        for v in viols {
            let _ = writeln!(
                out,
                "  {} points at {}, expected {}",
                v.node, v.actual, v.expected
            );
        }
    };
    verdict(sim, t_healthy, &mut out);
    verdict(sim, t_corrupt, &mut out);
    verdict(sim, t_end, &mut out);

    let osc = match &collector {
        Some(c) => retrospect::oscillators_in_collected(sim, c, &ring, t_healthy, t_end, 2),
        None => retrospect::oscillators_in(sim, &ring, t_healthy, t_end, 2),
    };
    let _ = writeln!(out, "oscillators in [{t_healthy} .. {t_end}]:");
    for (addr, flips) in osc {
        let _ = writeln!(out, "  {addr}: {flips} successor flips");
    }

    // Evidence the answers came from segments, not live rows: per node,
    // how many bestSucc versions the archive holds vs one live row.
    let _ = writeln!(out, "archived bestSucc versions:");
    match &collector {
        Some(c) => {
            let rows = sim
                .node_mut(c)
                .deployment_history_scan("bestSucc", Time::ZERO, t_end, t_end)
                .unwrap_or_default();
            for addr in ring.addrs.clone() {
                let n = rows
                    .iter()
                    .filter(|r| {
                        r.dropped_at.is_some()
                            && r.tuple
                                .get(0)
                                .and_then(Value::to_addr)
                                .is_some_and(|a| a == addr)
                    })
                    .count();
                let _ = writeln!(out, "  {addr}: {n}");
            }
            // Shipping evidence goes to stderr so stdout stays
            // byte-comparable with the walk-the-origins report.
            let stats = sim.node(c).ship_stats();
            eprintln!(
                "collect: {} announce chunks received, {} imports applied, {} bytes",
                stats.announce_chunks_received, stats.announces_applied, stats.bytes_received
            );
        }
        None => {
            for addr in ring.addrs.clone() {
                let rows = sim
                    .node_mut(&addr)
                    .history_scan("bestSucc", Time::ZERO, t_end, t_end)
                    .map(|rs| rs.iter().filter(|r| r.dropped_at.is_some()).count())
                    .unwrap_or(0);
                let _ = writeln!(out, "  {addr}: {rows}");
            }
        }
    }
    out
}

/// `p2ql recover --dir PATH` — offline recovery audit of one node's
/// file-backed durable log directory (DESIGN.md §2.14). Runs the same
/// recovery pass a booting node would (torn tails truncated, corrupt
/// frames quarantined, dirty logs rewritten clean) and prints the
/// per-relation summary. Always exits 0 on a readable directory, no
/// matter how damaged the logs are — recovery never panics.
fn recover(args: &[String]) -> ExitCode {
    let mut dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = it.next().cloned(),
            other => {
                eprintln!("unknown recover option '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("usage: p2ql recover --dir PATH");
        return ExitCode::from(2);
    };
    let mut out = String::new();
    p2ql::store::recovery_report(std::path::Path::new(&dir), &mut out);
    print!("{out}");
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let o = match parse_replay_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let mut node_config = NodeConfig::forensic();
    // `--restart` / `--data-dir` switch durability on: every sealed
    // segment is logged (in memory, or under the data dir) so the
    // crash-restart step can recover it. With neither flag the run is
    // byte-identical to before durability existed.
    if o.restart.is_some() || o.data_dir.is_some() {
        node_config.durability = Some(p2ql::core::DurabilityMode {
            backend: match &o.data_dir {
                Some(dir) => p2ql::core::DurableBackend::Dir(dir.into()),
                None => p2ql::core::DurableBackend::Memory,
            },
            fsync: false,
            plan: None,
        });
    }
    let report = if o.shards == 1 {
        let mut sim = SimHarness::new(SimConfig::default(), node_config, o.seed);
        replay_scenario(&mut sim, &o)
    } else {
        let mut sim =
            p2ql::core::ParallelHarness::new(SimConfig::default(), node_config, o.seed, o.shards);
        replay_scenario(&mut sim, &o)
    };
    print!("{report}");
    ExitCode::SUCCESS
}
